//! Memory controllers: WPQ acceptance, drain to PM, dropping, crash flush.
//!
//! Each memory channel owns a Write Pending Queue (WPQ). Per §4.1 the WPQ
//! is inside the persistence domain (ADR flushes it on power failure), so a
//! persist operation is *complete* the moment it is accepted into the WPQ.
//! The channel drains accepted entries to the PM media at a bandwidth-
//! limited service rate; entries still in the WPQ can be *dropped* by the
//! §5.1 traffic optimizations (LPO dropping, DPO dropping) and then never
//! cost PM write traffic.
//!
//! Host-side hot-path structure: the WPQ is a seq-ordered `VecDeque` whose
//! front is always the in-flight entry (drain picks the minimum sequence
//! number, which is the front of a FIFO), and every channel keeps a
//! line-address index over all of its *live* ops — on the wire, queued
//! behind a full WPQ, or resting in the WPQ — so store-forwarding reads
//! ([`MemSystem::read_for_fill`]) are one hash lookup instead of a scan of
//! the WPQ, the pending queue, and the whole event queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use asap_pmem::{AddrMap, LineAddr, MemoryImage};
use asap_sim::{
    Cycle, DomainWheels, EventQueue, MemConfig, Stats, Trace, TraceEvent, TraceSettings,
};

use crate::persist::{MemEvent, OpId, PersistKind, PersistOp};
use crate::rid::Rid;

/// Host worker count for intra-cell domain parallelism: `0` = follow the
/// `ASAP_CELL_JOBS` environment knob (the default), anything else is a
/// process-wide override installed by [`set_cell_jobs`].
static CELL_JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Parallel-window engagement threshold override (`0` = default const);
/// stored as `n + 1` so tests can force `0` (always parallel).
static PAR_WINDOW_MIN_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Minimum pending-event population before an advance window is worth
/// farming out to worker threads: a scoped spawn plus the replay merge
/// costs microseconds, so small windows (the per-access common case) stay
/// on the serial path. Both paths produce bit-identical results — this is
/// purely a host-side cost cutoff.
const PAR_WINDOW_MIN_EVENTS: usize = 128;

fn cell_jobs_env() -> usize {
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("ASAP_CELL_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Overrides the intra-cell worker count for newly built [`MemSystem`]s
/// (`None` = back to the `ASAP_CELL_JOBS` environment knob). Tests and
/// harnesses use this because one process runs many cells and the
/// environment is read only once.
pub fn set_cell_jobs(n: Option<usize>) {
    CELL_JOBS_OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Overrides the parallel-window engagement threshold for newly built
/// [`MemSystem`]s (`None` = default). Tests force a tiny threshold so
/// equivalence suites exercise the parallel path on small workloads.
pub fn set_parallel_window_min(n: Option<usize>) {
    PAR_WINDOW_MIN_OVERRIDE.store(n.map_or(0, |v| v + 1), Ordering::Relaxed);
}

fn cell_jobs() -> usize {
    match CELL_JOBS_OVERRIDE.load(Ordering::Relaxed) {
        0 => cell_jobs_env(),
        n => n,
    }
}

fn par_window_min() -> usize {
    match PAR_WINDOW_MIN_OVERRIDE.load(Ordering::Relaxed) {
        0 => PAR_WINDOW_MIN_EVENTS,
        n => n - 1,
    }
}

/// An accepted WPQ entry.
#[derive(Clone, Debug)]
struct WpqSlot {
    id: OpId,
    op: PersistOp,
    /// FIFO drain order within the channel.
    seq: u64,
    /// Acceptance time (drains after the residency window).
    accepted_at: Cycle,
}

/// Static counter name for a submission of `kind` — the same names
/// `format!("mem.submit.{}", kind.name())` produced, without a per-op
/// allocation on the submit hot path.
fn submit_counter(kind: PersistKind) -> &'static str {
    match kind {
        PersistKind::Lpo => "mem.submit.lpo",
        PersistKind::LogHeader => "mem.submit.log_header",
        PersistKind::Dpo => "mem.submit.dpo",
        PersistKind::WriteBack => "mem.submit.writeback",
        PersistKind::SwPersist => "mem.submit.sw_persist",
        PersistKind::Marker => "mem.submit.marker",
    }
}

/// Static counter name for a media write of `kind` (see [`submit_counter`]).
fn pm_write_counter(kind: PersistKind) -> &'static str {
    match kind {
        PersistKind::Lpo => "pm.write.lpo",
        PersistKind::LogHeader => "pm.write.log_header",
        PersistKind::Dpo => "pm.write.dpo",
        PersistKind::WriteBack => "pm.write.writeback",
        PersistKind::SwPersist => "pm.write.sw_persist",
        PersistKind::Marker => "pm.write.marker",
    }
}

/// Internal channel events.
#[derive(Clone, Debug)]
enum ChEvent {
    Arrive(OpId, PersistOp, Cycle),
    WriteDone(OpId),
    /// Residency expiry check: start draining if an entry is overdue.
    DrainCheck,
}

/// Freelist/list terminator for the store-forward node slab.
const FWD_NIL: u32 = u32::MAX;

/// One node of a per-line store-forward list, slab-allocated so indexing
/// and unindexing an op never touches the heap at steady state (the old
/// layout kept a `Vec` per live line, paying an allocation and a free for
/// every single-op line — i.e. for almost every persist op).
#[derive(Clone, Debug)]
struct FwdNode {
    id: OpId,
    data: [u8; 64],
    /// Next (newer) op targeting the same line, or [`FWD_NIL`].
    next: u32,
}

/// One memory channel: WPQ plus the PM write engine.
#[derive(Clone, Debug)]
struct Channel {
    capacity: usize,
    /// Accepted entries in sequence order. When `writing` is `Some`, the
    /// in-flight entry is always the front: drain selects the minimum
    /// sequence number, acceptance appends increasing sequence numbers, and
    /// drops never remove the in-flight entry.
    wpq: VecDeque<WpqSlot>,
    /// Arrived while the WPQ was full; accepted as slots free (FIFO).
    /// Each entry remembers its original submit time.
    pending: VecDeque<(OpId, PersistOp, Cycle)>,
    /// Entry currently being written to the media, if any.
    writing: Option<OpId>,
    next_seq: u64,
    /// Store-forward index: every live op targeting this channel (on the
    /// wire, pending, or in the WPQ), per line, as a `(head, tail)` list
    /// of slab nodes in submission-id order — the newest write to a line
    /// is the tail node. Maintained on submit, media write, drop, and
    /// crash flush.
    by_line: AddrMap<LineAddr, (u32, u32)>,
    /// Node arena for `by_line`, recycled through `fwd_free`.
    fwd_nodes: Vec<FwdNode>,
    fwd_free: Vec<u32>,
}

impl Channel {
    fn new(capacity: usize) -> Self {
        Channel {
            capacity,
            wpq: VecDeque::new(),
            pending: VecDeque::new(),
            writing: None,
            next_seq: 0,
            by_line: AddrMap::default(),
            fwd_nodes: Vec::new(),
            fwd_free: Vec::new(),
        }
    }

    fn has_free_slot(&self) -> bool {
        self.wpq.len() < self.capacity
    }

    /// Adds an op to the store-forward index. Ids are monotonic, so
    /// appending at the tail keeps each per-line list sorted by id.
    fn index(&mut self, line: LineAddr, id: OpId, data: [u8; 64]) {
        let node = FwdNode {
            id,
            data,
            next: FWD_NIL,
        };
        let n = match self.fwd_free.pop() {
            Some(n) => {
                self.fwd_nodes[n as usize] = node;
                n
            }
            None => {
                self.fwd_nodes.push(node);
                (self.fwd_nodes.len() - 1) as u32
            }
        };
        match self.by_line.entry(line) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let tail = e.get().1;
                self.fwd_nodes[tail as usize].next = n;
                e.get_mut().1 = n;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((n, n));
            }
        }
    }

    /// The newest live write to `line`, if any.
    fn newest(&self, line: LineAddr) -> Option<&[u8; 64]> {
        let (_, tail) = self.by_line.get(&line)?;
        Some(&self.fwd_nodes[*tail as usize].data)
    }

    /// Removes one op from the store-forward index (it left the live set).
    /// Per-line lists are short (usually one node: a drained op is the
    /// oldest for its line, i.e. the head), so the walk is effectively
    /// constant time.
    fn unindex(&mut self, line: LineAddr, id: OpId) {
        let &(head, tail) = self.by_line.get(&line).expect("live op must be indexed");
        let mut prev = FWD_NIL;
        let mut cur = head;
        loop {
            let n = &self.fwd_nodes[cur as usize];
            if n.id == id {
                break;
            }
            prev = cur;
            cur = n.next;
            assert_ne!(cur, FWD_NIL, "live op must be indexed");
        }
        let next = self.fwd_nodes[cur as usize].next;
        if prev == FWD_NIL {
            if next == FWD_NIL {
                self.by_line.remove(&line);
            } else {
                self.by_line.insert(line, (next, tail));
            }
        } else {
            self.fwd_nodes[prev as usize].next = next;
            if cur == tail {
                self.by_line.insert(line, (head, prev));
            }
        }
        self.fwd_free.push(cur);
    }

    /// Empties the store-forward index (crash flush). The node arena and
    /// map buckets keep their capacity for reuse after recovery.
    fn clear_index(&mut self) {
        self.by_line.clear();
        self.fwd_nodes.clear();
        self.fwd_free.clear();
    }
}

/// The memory system: all channels, their WPQs, and PM/DRAM timing.
///
/// Drive it with [`submit`](Self::submit) (send a persist op), then
/// [`advance_to`](Self::advance_to) (process internal events up to a time)
/// and [`pop_event`](Self::pop_event) (collect acceptance/write
/// notifications).
///
/// # Example
///
/// ```
/// use asap_mem::{MemSystem, PersistKind, PersistOp, MemEvent};
/// use asap_pmem::{LineAddr, MemoryImage, PM_BASE};
/// use asap_sim::{Cycle, SystemConfig};
///
/// let cfg = SystemConfig::small();
/// let mut image = MemoryImage::new();
/// let mut mem = MemSystem::new(&cfg);
/// let line = LineAddr(PM_BASE / 64);
/// let op = PersistOp::new(PersistKind::Dpo, line, [9u8; 64], None);
/// mem.submit(op, Cycle(0));
/// mem.advance_to(Cycle(10_000), &mut image);
/// assert!(matches!(mem.pop_event(), Some(MemEvent::Accepted { .. })));
/// assert!(matches!(mem.pop_event(), Some(MemEvent::PmWritten { .. })));
/// assert_eq!(image.read_line(line)[0], 9);
/// ```
pub struct MemSystem {
    cfg: MemConfig,
    channels: Vec<Channel>,
    /// One calendar wheel per channel (the channel *is* the simulation
    /// domain): every internal event belongs to exactly one channel, so
    /// the frontier over per-wheel cached minima replaces the old global
    /// wheel scan, and wheels can be advanced independently in parallel.
    events: DomainWheels<ChEvent>,
    out: VecDeque<MemEvent>,
    next_id: u64,
    stats: Stats,
    trace: Trace,
    /// PM media writes per line, kept only when telemetry asks for the
    /// hottest-lines table (`None` = tracking off, zero overhead).
    line_writes: Option<AddrMap<LineAddr, u64>>,
    /// Worker threads for parallel advance windows (1 = always serial).
    cell_jobs: usize,
    /// Event-population threshold below which windows stay serial.
    par_min: usize,
    /// Per-channel worker buffers, reused across parallel windows.
    scratch: Vec<WindowScratch>,
    /// Events handled per channel (serial and parallel paths).
    domain_events: Vec<u64>,
    /// Advance windows that engaged the parallel path.
    par_windows: u64,
    /// [`MemEvent`]s merged across the domain → machine boundary by
    /// parallel windows (the cross-domain exchange volume).
    exchange_events: u64,
    /// Host nanoseconds spent in the serial replay merge — time the
    /// frontier is stalled waiting on sequencing rather than simulating.
    frontier_stall_ns: u64,
}

/// Snapshot support: a clone carries every piece of simulation state —
/// channels (WPQ, pending, forward index + node arenas), calendar wheels,
/// the out queue, stats, trace, and hot-line counts — bit-exactly.
/// `scratch` is the one exception: it is worker-local buffer space,
/// cleared at the start of every parallel window, so clones get fresh
/// (empty) buffers of the right arity instead of copying dead data.
impl Clone for MemSystem {
    fn clone(&self) -> Self {
        MemSystem {
            cfg: self.cfg,
            channels: self.channels.clone(),
            events: self.events.clone(),
            out: self.out.clone(),
            next_id: self.next_id,
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            line_writes: self.line_writes.clone(),
            cell_jobs: self.cell_jobs,
            par_min: self.par_min,
            scratch: self
                .scratch
                .iter()
                .map(|_| WindowScratch::default())
                .collect(),
            domain_events: self.domain_events.clone(),
            par_windows: self.par_windows,
            exchange_events: self.exchange_events,
            frontier_stall_ns: self.frontier_stall_ns,
        }
    }

    /// Allocation-reusing restore: overwrites `self` in place so channel
    /// deques, wheel buckets, and index tables keep their buffers across
    /// repeated restores into the same scratch machine.
    fn clone_from(&mut self, src: &Self) {
        self.cfg = src.cfg;
        self.channels.clone_from(&src.channels);
        self.events.clone_from(&src.events);
        self.out.clone_from(&src.out);
        self.next_id = src.next_id;
        self.stats.clone_from(&src.stats);
        self.trace.clone_from(&src.trace);
        self.line_writes.clone_from(&src.line_writes);
        self.cell_jobs = src.cell_jobs;
        self.par_min = src.par_min;
        if self.scratch.len() != src.scratch.len() {
            self.scratch = src
                .scratch
                .iter()
                .map(|_| WindowScratch::default())
                .collect();
        }
        self.domain_events.clone_from(&src.domain_events);
        self.par_windows = src.par_windows;
        self.exchange_events = src.exchange_events;
        self.frontier_stall_ns = src.frontier_stall_ns;
    }
}

impl MemSystem {
    /// Builds the memory system from a full system configuration.
    pub fn new(cfg: &asap_sim::SystemConfig) -> Self {
        let mem = cfg.mem;
        let n = mem.num_channels();
        MemSystem {
            cfg: mem,
            channels: (0..n)
                .map(|_| Channel::new(mem.wpq_entries as usize))
                .collect(),
            events: DomainWheels::new(n as usize),
            out: VecDeque::new(),
            next_id: 0,
            stats: Stats::new(),
            trace: Trace::disabled(),
            line_writes: None,
            cell_jobs: cell_jobs(),
            par_min: par_window_min(),
            scratch: (0..n).map(|_| WindowScratch::default()).collect(),
            domain_events: vec![0; n as usize],
            par_windows: 0,
            exchange_events: 0,
            frontier_stall_ns: 0,
        }
    }

    /// Reconfigures event tracing (records `WpqAccept`/`WpqDrain` with the
    /// channel as the trace thread id).
    pub fn set_trace_settings(&mut self, settings: TraceSettings) {
        self.trace = Trace::new(settings);
    }

    /// Turns per-line PM write counting on or off (the telemetry report's
    /// hottest-lines table). Off by default; resets counts when toggled.
    pub fn set_hot_line_tracking(&mut self, on: bool) {
        self.line_writes = on.then(AddrMap::default);
    }

    /// The `n` most-written PM lines as `(line, media_writes)`, hottest
    /// first (ties by line address). Empty unless tracking is on.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let Some(map) = &self.line_writes else {
            return Vec::new();
        };
        let mut v: Vec<(u64, u64)> = map.iter().map(|(l, c)| (l.0, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The memory-side event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The channel serving `line` (interleaved by line address).
    pub fn channel_of(&self, line: LineAddr) -> u32 {
        (line.0 % self.channels.len() as u64) as u32
    }

    /// Submits a persist operation at time `now`; it arrives at its channel
    /// one on-chip hop later. Returns the op's id.
    pub fn submit(&mut self, op: PersistOp, now: Cycle) -> OpId {
        let id = OpId(self.next_id);
        self.next_id += 1;
        let ch = self.channel_of(op.target);
        self.stats.bump(submit_counter(op.kind));
        self.channels[ch as usize].index(op.target, id, op.data);
        self.events.push(
            ch,
            now + self.cfg.mc_hop_latency,
            ChEvent::Arrive(id, op, now),
        );
        id
    }

    /// Latency of a demand read of `line` (beyond the LLC lookup): one hop
    /// to the controller plus the media access.
    pub fn read_latency(&self, line: LineAddr) -> u64 {
        let media = if line.is_pm_region() {
            self.cfg.pm_latency()
        } else {
            self.cfg.dram_latency
        };
        self.cfg.mc_hop_latency + media
    }

    /// Reads `line` for a cache fill, forwarding the newest matching write
    /// wherever it currently is — resting in the WPQ, queued behind a full
    /// WPQ, or still on the wire to its controller — before falling back
    /// to the image. (A line evicted and immediately re-read must observe
    /// its own writeback.) Returns the line data and its page-table
    /// persistent bit.
    pub fn read_for_fill(&mut self, line: LineAddr, image: &MemoryImage) -> ([u8; 64], bool) {
        let ch = &self.channels[self.channel_of(line) as usize];
        // The per-line node list is in submission order, so the newest
        // matching write — wherever it currently travels — is the tail.
        let newest = ch.newest(line);
        let pbit = image.line_is_persistent(line);
        match newest {
            Some(data) => {
                let data = *data;
                self.stats.bump("mem.read.forwarded");
                (data, pbit)
            }
            None => (image.read_line(line), pbit),
        }
    }

    /// Advances internal channel state to `now`, applying media writes to
    /// `image` and queueing [`MemEvent`]s for [`pop_event`](Self::pop_event).
    ///
    /// Large windows are farmed out to `ASAP_CELL_JOBS` worker threads
    /// (one group of channels each) and stitched back together by a
    /// deterministic replay merge — the result is bit-identical to the
    /// serial schedule (see `DESIGN.md` §12). The machine is quiescent for
    /// the whole window and channels never talk to each other, so the
    /// conservative lookahead is the full window.
    pub fn advance_to(&mut self, now: Cycle, image: &mut MemoryImage) {
        if self.cell_jobs > 1
            && self.channels.len() > 1
            && !self.trace.enabled()
            && self.events.len() >= self.par_min
            && self.events.peek_time().is_some_and(|t| t <= now)
        {
            self.advance_window_parallel(now, image);
        }
        while let Some((ch, t, ev)) = self.events.pop_until(now) {
            self.domain_events[ch as usize] += 1;
            self.handle(t, ch as usize, ev, image);
        }
    }

    /// Next internal event time, if any work is outstanding.
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.events.peek_time()
    }

    /// Pops the next acceptance / PM-write notification.
    pub fn pop_event(&mut self) -> Option<MemEvent> {
        self.out.pop_front()
    }

    /// Whether all channels are fully drained and no events are pending.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
            && self.out.is_empty()
            && self
                .channels
                .iter()
                .all(|c| c.wpq.is_empty() && c.pending.is_empty() && c.writing.is_none())
    }

    /// Serial event dispatch: effects go straight to the global state.
    fn handle(&mut self, t: Cycle, ch_idx: usize, ev: ChEvent, image: &mut MemoryImage) {
        let mut fx = DirectFx {
            out: &mut self.out,
            image: Some(image),
            stats: &mut self.stats,
            hot: self.line_writes.as_mut(),
            trace: &mut self.trace,
            events: &mut self.events,
            domain: ch_idx as u32,
        };
        handle_ch(
            &self.cfg,
            ch_idx as u32,
            &mut self.channels[ch_idx],
            &mut fx,
            t,
            ev,
        );
    }

    /// Serial acceptance outside an advance window (drop-refill path; never
    /// writes media, so no image is needed).
    fn accept_serial(
        &mut self,
        t: Cycle,
        ch_idx: usize,
        id: OpId,
        op: PersistOp,
        submitted: Cycle,
    ) {
        let mut fx = DirectFx {
            out: &mut self.out,
            image: None,
            stats: &mut self.stats,
            hot: self.line_writes.as_mut(),
            trace: &mut self.trace,
            events: &mut self.events,
            domain: ch_idx as u32,
        };
        accept_ch(
            &self.cfg,
            ch_idx as u32,
            &mut self.channels[ch_idx],
            &mut fx,
            t,
            id,
            op,
            submitted,
        );
    }

    /// Drains every channel's window `(frontier, now]` on worker threads,
    /// then replays the recorded per-channel schedules through a serial
    /// merge that reconstructs the exact global `(time, seq)` order — the
    /// out-event stream, image writes, statistics, and the seq numbers of
    /// surviving scheduled events all come out bit-identical to the serial
    /// path (the correctness argument lives in `DESIGN.md` §12).
    fn advance_window_parallel(&mut self, now: Cycle, image: &mut MemoryImage) {
        self.par_windows += 1;
        let seq_base = self.events.seq();
        let nch = self.channels.len();
        let jobs = self.cell_jobs.min(nch).max(1);
        let chunk = nch.div_ceil(jobs);
        let cfg = self.cfg;
        let hot_on = self.line_writes.is_some();
        let wheels = self.events.wheels_mut();
        std::thread::scope(|scope| {
            let mut first = None;
            let mut handles = Vec::with_capacity(jobs.saturating_sub(1));
            let groups = self
                .channels
                .chunks_mut(chunk)
                .zip(wheels.chunks_mut(chunk))
                .zip(self.scratch.chunks_mut(chunk));
            for (gi, ((chs, whs), scs)) in groups.enumerate() {
                let base = gi * chunk;
                let job = move || {
                    for (j, ((ch, wheel), sc)) in chs
                        .iter_mut()
                        .zip(whs.iter_mut())
                        .zip(scs.iter_mut())
                        .enumerate()
                    {
                        run_channel_window(
                            &cfg,
                            (base + j) as u32,
                            ch,
                            wheel,
                            sc,
                            seq_base,
                            now,
                            hot_on,
                        );
                    }
                };
                if gi == 0 {
                    first = Some(job);
                } else {
                    handles.push(scope.spawn(job));
                }
            }
            // The first group runs on this thread while the others work.
            if let Some(mut job) = first {
                job();
            }
            for h in handles {
                h.join().expect("window worker panicked");
            }
        });
        // Replay merge: repeatedly take the channel whose head record has
        // the smallest (time, final seq) key. A head's final seq is always
        // known — pre-window events carry their real seq, and a
        // window-born event's seq was assigned when its parent (same
        // channel, strictly earlier) merged.
        let merge_start = Instant::now();
        let total: usize = self.scratch.iter().map(|s| s.recs.len()).sum();
        let mut next_seq = seq_base;
        let mut heads = vec![0usize; nch];
        let mut out_cur = vec![0usize; nch];
        let mut img_cur = vec![0usize; nch];
        for _ in 0..total {
            let mut best: Option<(Cycle, u64, usize)> = None;
            for (c, sc) in self.scratch.iter().enumerate() {
                if let Some(r) = sc.recs.get(heads[c]) {
                    let fseq = if r.seq < seq_base {
                        r.seq
                    } else {
                        sc.final_seqs[(r.seq - seq_base) as usize]
                    };
                    debug_assert_ne!(fseq, u64::MAX, "head's final seq must be assigned");
                    if best.is_none_or(|(bat, bseq, _)| (r.at, fseq) < (bat, bseq)) {
                        best = Some((r.at, fseq, c));
                    }
                }
            }
            let (_, _, c) = best.expect("merge ran out of records early");
            let r = self.scratch[c].recs[heads[c]];
            heads[c] += 1;
            {
                let sc = &mut self.scratch[c];
                for k in 0..u32::from(r.pushes) {
                    sc.final_seqs[(r.first_prov + k) as usize] = next_seq;
                    next_seq += 1;
                }
            }
            for _ in 0..r.outs {
                let ev = self.scratch[c].outs[out_cur[c]].clone();
                self.out.push_back(ev);
                out_cur[c] += 1;
            }
            self.exchange_events += u64::from(r.outs);
            for _ in 0..r.imgs {
                let (line, data) = self.scratch[c].imgs[img_cur[c]];
                image.write_line(line, &data);
                img_cur[c] += 1;
            }
        }
        // Survivors (scheduled past `now`) get their provisional seqs
        // rewritten to the merged assignment; side stats fold in per
        // channel (exact, order-independent merges).
        let wheels = self.events.wheels_mut();
        for (c, sc) in self.scratch.iter_mut().enumerate() {
            wheels[c].remap_seqs(seq_base, &sc.final_seqs);
            self.domain_events[c] += sc.recs.len() as u64;
            self.stats.merge(&sc.stats);
            if let Some(map) = &mut self.line_writes {
                for (line, n) in sc.hot.iter() {
                    *map.entry(*line).or_insert(0) += *n;
                }
            }
            sc.clear();
        }
        self.events.set_seq(next_seq);
        self.frontier_stall_ns += merge_start.elapsed().as_nanos() as u64;
    }

    /// Drops a committed region's log writes (LPOs and log headers) still
    /// sitting in WPQs — LPO dropping, §5.1. Returns how many were dropped.
    pub fn drop_log_writes_of(&mut self, rid: Rid) -> u64 {
        let mut dropped = 0;
        for ch_idx in 0..self.channels.len() {
            dropped += self.drop_matching(ch_idx, |op| {
                matches!(op.kind, PersistKind::Lpo | PersistKind::LogHeader) && op.rid == Some(rid)
            });
        }
        self.stats.add("pm.drop.lpo", dropped);
        dropped
    }

    /// Drops an earlier region's pending DPO to `line` when a later
    /// region's LPO for the same line arrives (they carry the same bytes) —
    /// DPO dropping, §5.1. Returns how many were dropped (0 or 1).
    pub fn drop_pending_dpo(&mut self, line: LineAddr, later_region: Rid) -> u64 {
        let ch_idx = self.channel_of(line) as usize;
        let dropped = self.drop_matching(ch_idx, |op| {
            op.kind == PersistKind::Dpo && op.target == line && op.rid != Some(later_region)
        });
        self.stats.add("pm.drop.dpo", dropped);
        dropped
    }

    /// Removes all non-in-flight WPQ slots matching `pred`; frees slots are
    /// refilled from the pending queue. Dropped ops emit no events.
    fn drop_matching(&mut self, ch_idx: usize, pred: impl Fn(&PersistOp) -> bool) -> u64 {
        let writing = self.channels[ch_idx].writing;
        let mut removed: Vec<(LineAddr, OpId)> = Vec::new();
        self.channels[ch_idx].wpq.retain(|s| {
            if Some(s.id) == writing || !pred(&s.op) {
                true
            } else {
                removed.push((s.op.target, s.id));
                false
            }
        });
        let dropped = removed.len() as u64;
        for (line, id) in removed {
            self.channels[ch_idx].unindex(line, id);
        }
        for _ in 0..dropped {
            if !self.channels[ch_idx].has_free_slot() {
                break;
            }
            match self.channels[ch_idx].pending.pop_front() {
                Some((pid, pop, psub)) => {
                    // Accept at the time the channel last made progress; we
                    // use the next event horizon conservatively: acceptance
                    // is immediate bookkeeping, timestamped "now-ish" via
                    // the earliest pending event or zero. The scheme only
                    // cares about ordering, which is preserved.
                    let t = self.events.peek_time().unwrap_or(Cycle::ZERO);
                    self.accept_serial(t, ch_idx, pid, pop, psub);
                }
                None => break,
            }
        }
        dropped
    }

    /// Power failure: ADR flushes every accepted WPQ entry (including the
    /// in-flight one) to the media. Unaccepted pending arrivals are lost.
    /// Internal state is cleared.
    pub fn flush_to_image(&mut self, image: &mut MemoryImage) {
        for ch in &mut self.channels {
            // The WPQ is kept in seq order, so iterating front-to-back
            // applies same-line writes oldest-first (the newest wins).
            let slots = std::mem::take(&mut ch.wpq);
            debug_assert!(slots
                .iter()
                .zip(slots.iter().skip(1))
                .all(|(a, b)| a.seq < b.seq));
            for s in &slots {
                image.write_line(s.op.target, &s.op.data);
                self.stats.bump("crash.flushed");
            }
            let lost = ch.pending.len() as u64;
            self.stats.add("crash.lost_unaccepted", lost);
            ch.pending.clear();
            ch.writing = None;
            // Every live op either reached the image (WPQ) or was lost
            // (pending / on the wire): nothing is forwardable any more.
            ch.clear_index();
        }
        // Ops still travelling to their controller (unprocessed arrival
        // events) never reached the persistence domain either.
        let mut on_the_wire = 0;
        while let Some((_, _, ev)) = self.events.pop() {
            if matches!(ev, ChEvent::Arrive(..)) {
                on_the_wire += 1;
            }
        }
        self.stats.add("crash.lost_unaccepted", on_the_wire);
        self.out.clear();
    }

    /// WPQ occupancy of channel `ch` (accepted entries).
    pub fn wpq_len(&self, ch: u32) -> usize {
        self.channels[ch as usize].wpq.len()
    }

    /// Unaccepted arrivals queued at channel `ch`.
    pub fn pending_len(&self, ch: u32) -> usize {
        self.channels[ch as usize].pending.len()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> u32 {
        self.channels.len() as u32
    }

    /// Statistics accumulated by the memory system.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// High-water mark of the store-forward node slab across channels.
    /// The slab only grows (freed nodes go to a freelist), so its length
    /// *is* the high-water mark of concurrently live ops per channel.
    pub fn fwd_slab_hwm(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.fwd_nodes.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Sparse-tail full scans performed by the channel event calendars
    /// (see [`EventQueue::full_scans`]), summed across domains.
    pub fn calendar_full_scans(&self) -> u64 {
        self.events.full_scans()
    }

    /// Host-side domain metrics for the observability bus: per-channel
    /// handled-event counts, parallel windows taken, cross-domain exchange
    /// volume (out-events merged by parallel windows), and frontier-stall
    /// nanoseconds (host time in the replay merge).
    pub fn domain_metrics(&self) -> (&[u64], u64, u64, u64) {
        (
            &self.domain_events,
            self.par_windows,
            self.exchange_events,
            self.frontier_stall_ns,
        )
    }

    /// The configured intra-cell worker count (`ASAP_CELL_JOBS`).
    pub fn cell_jobs(&self) -> usize {
        self.cell_jobs
    }

    /// Forces the parallel path for this instance (unit tests; the
    /// process-global knobs stay untouched so concurrent tests are not
    /// affected).
    #[cfg(test)]
    fn force_parallel(&mut self, jobs: usize, window_min: usize) {
        self.cell_jobs = jobs;
        self.par_min = window_min;
    }

    /// Counts DRAM traffic for a dirty non-PM writeback (fire-and-forget:
    /// DRAM writes are not persist operations and skip the WPQ).
    pub fn dram_writeback(&mut self, image: &mut MemoryImage, line: LineAddr, data: &[u8; 64]) {
        image.write_line(line, data);
        self.stats.bump("dram.write.writeback");
    }
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("channels", &self.channels.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

/// Effect sink for the per-channel event handler. The channel semantics
/// live once in [`handle_ch`]/[`accept_ch`]/[`maybe_start_write_ch`],
/// generic over this trait: the serial path ([`DirectFx`]) applies effects
/// straight to the simulator's global state, the parallel path
/// ([`WindowFx`]) buffers them per channel for the deterministic replay
/// merge. Monomorphization keeps both paths branch-free.
trait ChannelFx {
    /// Emits an externally visible memory event.
    fn emit(&mut self, ev: MemEvent);
    /// Applies a PM media write.
    fn write_line(&mut self, line: LineAddr, data: &[u8; 64]);
    /// The statistics registry effects are recorded against.
    fn stats(&mut self) -> &mut Stats;
    /// Counts a media write against the hottest-lines table, if tracking.
    fn hot_line(&mut self, line: LineAddr);
    /// Records a trace event (parallel windows require tracing off).
    fn trace(&mut self, at: Cycle, ev: TraceEvent);
    /// Schedules a follow-up event on this channel's wheel, drawing the
    /// next sequence number in this sink's lane (the shared global counter
    /// serially; provisional window numbering in parallel workers).
    fn push_event(&mut self, at: Cycle, ev: ChEvent);
}

/// Serial sink: effects land directly on the [`MemSystem`] fields.
struct DirectFx<'a> {
    out: &'a mut VecDeque<MemEvent>,
    /// `None` only on the drop-refill acceptance path, which never writes
    /// media.
    image: Option<&'a mut MemoryImage>,
    stats: &'a mut Stats,
    hot: Option<&'a mut AddrMap<LineAddr, u64>>,
    trace: &'a mut Trace,
    /// The whole partitioned queue, not a single lane: pushing through
    /// [`DomainWheels::push`] keeps the frontier/count memos valid across
    /// dispatch instead of invalidating them on every handled event.
    events: &'a mut DomainWheels<ChEvent>,
    domain: u32,
}

impl ChannelFx for DirectFx<'_> {
    fn emit(&mut self, ev: MemEvent) {
        self.out.push_back(ev);
    }

    fn write_line(&mut self, line: LineAddr, data: &[u8; 64]) {
        self.image
            .as_mut()
            .expect("media write outside an advance window")
            .write_line(line, data);
    }

    fn stats(&mut self) -> &mut Stats {
        self.stats
    }

    fn hot_line(&mut self, line: LineAddr) {
        if let Some(map) = self.hot.as_mut() {
            *map.entry(line).or_insert(0) += 1;
        }
    }

    fn trace(&mut self, at: Cycle, ev: TraceEvent) {
        self.trace.emit(at, self.domain, ev);
    }

    fn push_event(&mut self, at: Cycle, ev: ChEvent) {
        self.events.push(self.domain, at, ev);
    }
}

/// One handled event in a parallel window: where its buffered effects live
/// and which sequence numbers it spawned, so the replay merge can
/// reconstruct the serial global order.
#[derive(Clone, Copy)]
struct WindowRec {
    at: Cycle,
    /// The handled event's own seq — real (`< seq_base`) for events that
    /// predate the window, provisional otherwise.
    seq: u64,
    /// First provisional id this event's pushes received.
    first_prov: u32,
    /// How many events it pushed.
    pushes: u16,
    /// How many [`MemEvent`]s it emitted.
    outs: u16,
    /// How many media writes it performed.
    imgs: u16,
}

/// Per-channel worker buffers for one parallel window, reused across
/// windows (cleared, capacity kept).
#[derive(Default)]
struct WindowScratch {
    recs: Vec<WindowRec>,
    outs: Vec<MemEvent>,
    imgs: Vec<(LineAddr, [u8; 64])>,
    stats: Stats,
    hot: AddrMap<LineAddr, u64>,
    /// Provisional seq ids handed out so far (dense from 0).
    prov: u32,
    /// Provisional id → final global seq, filled during the replay merge.
    final_seqs: Vec<u64>,
}

impl WindowScratch {
    fn clear(&mut self) {
        self.recs.clear();
        self.outs.clear();
        self.imgs.clear();
        self.stats = Stats::new();
        self.hot.clear();
        self.prov = 0;
        self.final_seqs.clear();
    }
}

/// Parallel-worker sink: buffers every effect in the channel's
/// [`WindowScratch`]. Pushed events get provisional seqs `seq_base + n`,
/// which order correctly against pre-window seqs (all `< seq_base`) and
/// against each other (birth order) within the channel.
struct WindowFx<'a> {
    outs: &'a mut Vec<MemEvent>,
    imgs: &'a mut Vec<(LineAddr, [u8; 64])>,
    stats: &'a mut Stats,
    hot: Option<&'a mut AddrMap<LineAddr, u64>>,
    wheel: &'a mut EventQueue<ChEvent>,
    seq_base: u64,
    prov: &'a mut u32,
}

impl ChannelFx for WindowFx<'_> {
    fn emit(&mut self, ev: MemEvent) {
        self.outs.push(ev);
    }

    fn write_line(&mut self, line: LineAddr, data: &[u8; 64]) {
        self.imgs.push((line, *data));
    }

    fn stats(&mut self) -> &mut Stats {
        self.stats
    }

    fn hot_line(&mut self, line: LineAddr) {
        if let Some(map) = self.hot.as_mut() {
            *map.entry(line).or_insert(0) += 1;
        }
    }

    fn trace(&mut self, _at: Cycle, _ev: TraceEvent) {
        // Dropped: the parallel gate requires tracing disabled, so the
        // serial path would have discarded this record too.
    }

    fn push_event(&mut self, at: Cycle, ev: ChEvent) {
        let seq = self.seq_base + u64::from(*self.prov);
        *self.prov += 1;
        self.wheel.push_with_seq(at, seq, ev);
    }
}

/// Handles one channel event. Shared by the serial and parallel paths via
/// the [`ChannelFx`] sink.
fn handle_ch<FX: ChannelFx>(
    cfg: &MemConfig,
    ch_idx: u32,
    ch: &mut Channel,
    fx: &mut FX,
    t: Cycle,
    ev: ChEvent,
) {
    match ev {
        ChEvent::Arrive(id, op, submitted) => {
            if ch.has_free_slot() {
                accept_ch(cfg, ch_idx, ch, fx, t, id, op, submitted);
            } else {
                ch.pending.push_back((id, op, submitted));
                fx.stats().bump("mem.wpq.full_arrival");
            }
            maybe_start_write_ch(cfg, ch, fx, t);
        }
        ChEvent::WriteDone(id) => {
            debug_assert_eq!(ch.writing, Some(id), "write-done for wrong op");
            ch.writing = None;
            let slot = ch.wpq.pop_front().expect("in-flight slot missing");
            debug_assert_eq!(slot.id, id, "in-flight slot must be the front");
            ch.unindex(slot.op.target, slot.id);
            fx.write_line(slot.op.target, &slot.op.data);
            fx.stats().bump(pm_write_counter(slot.op.kind));
            fx.stats().bump("pm.write.total");
            fx.hot_line(slot.op.target);
            let residency = t.since(slot.accepted_at);
            fx.stats().sample("mem.wpq.residency_cycles", residency);
            fx.trace(
                t,
                TraceEvent::WpqDrain {
                    channel: ch_idx,
                    kind: slot.op.kind.name(),
                    residency,
                },
            );
            fx.emit(MemEvent::PmWritten {
                id: slot.id,
                op: slot.op,
                at: t,
            });
            // A slot freed: accept the oldest pending arrival, if any.
            if let Some((pid, pop, psub)) = ch.pending.pop_front() {
                accept_ch(cfg, ch_idx, ch, fx, t, pid, pop, psub);
            }
            maybe_start_write_ch(cfg, ch, fx, t);
        }
        ChEvent::DrainCheck => {
            maybe_start_write_ch(cfg, ch, fx, t);
        }
    }
}

/// Accepts an op into the channel's WPQ — the §4.1 durability point.
#[allow(clippy::too_many_arguments)]
fn accept_ch<FX: ChannelFx>(
    cfg: &MemConfig,
    ch_idx: u32,
    ch: &mut Channel,
    fx: &mut FX,
    t: Cycle,
    id: OpId,
    op: PersistOp,
    submitted: Cycle,
) {
    debug_assert!(ch.has_free_slot());
    let seq = ch.next_seq;
    ch.next_seq += 1;
    ch.wpq.push_back(WpqSlot {
        id,
        op,
        seq,
        accepted_at: t,
    });
    fx.stats().sample("mem.wpq.occupancy", ch.wpq.len() as u64);
    // Persist latency: submit to persistence-domain acceptance (the
    // durability point under ADR, §4.1).
    fx.stats().sample("mem.persist.latency", t.since(submitted));
    fx.trace(
        t,
        TraceEvent::WpqAccept {
            channel: ch_idx,
            kind: op.kind.name(),
        },
    );
    if cfg.wpq_residency > 0 {
        // Lazy drain: revisit this entry when its residency expires.
        fx.push_event(t + cfg.wpq_residency, ChEvent::DrainCheck);
    }
    fx.emit(MemEvent::Accepted {
        id,
        op,
        at: t,
        ack_at: t + cfg.mc_hop_latency,
    });
}

/// Starts draining if warranted: always when an entry is past its
/// residency window or the queue is above the watermark; immediately
/// when residency is 0 (eager mode).
fn maybe_start_write_ch<FX: ChannelFx>(cfg: &MemConfig, ch: &mut Channel, fx: &mut FX, t: Cycle) {
    if ch.writing.is_some() {
        return;
    }
    // No write in flight, so the oldest (minimum-seq) entry is the
    // front of the seq-ordered queue.
    let Some(slot) = ch.wpq.front() else {
        return;
    };
    let residency = cfg.wpq_residency;
    let due = residency == 0
        || ch.wpq.len() >= cfg.wpq_drain_watermark as usize
        || slot.accepted_at + residency <= t;
    if due {
        let id = slot.id;
        ch.writing = Some(id);
        fx.push_event(t + cfg.pm_write_service(), ChEvent::WriteDone(id));
    }
}

/// Drains one channel's events in `(.., now]` into its scratch buffers
/// (the parallel worker body). Local pop order equals the serial global
/// order restricted to this channel, because every seq — real or
/// provisional — compares consistently within the channel.
#[allow(clippy::too_many_arguments)]
fn run_channel_window(
    cfg: &MemConfig,
    ch_idx: u32,
    ch: &mut Channel,
    wheel: &mut EventQueue<ChEvent>,
    sc: &mut WindowScratch,
    seq_base: u64,
    now: Cycle,
    hot_on: bool,
) {
    debug_assert!(sc.recs.is_empty() && sc.prov == 0, "scratch not cleared");
    while let Some((t, seq, ev)) = wheel.pop_entry_until(now) {
        let prov0 = sc.prov;
        let outs0 = sc.outs.len();
        let imgs0 = sc.imgs.len();
        let mut fx = WindowFx {
            outs: &mut sc.outs,
            imgs: &mut sc.imgs,
            stats: &mut sc.stats,
            hot: if hot_on { Some(&mut sc.hot) } else { None },
            wheel: &mut *wheel,
            seq_base,
            prov: &mut sc.prov,
        };
        handle_ch(cfg, ch_idx, ch, &mut fx, t, ev);
        sc.recs.push(WindowRec {
            at: t,
            seq,
            first_prov: prov0,
            pushes: (sc.prov - prov0) as u16,
            outs: (sc.outs.len() - outs0) as u16,
            imgs: (sc.imgs.len() - imgs0) as u16,
        });
    }
    sc.final_seqs.resize(sc.prov as usize, u64::MAX);
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pmem::PM_BASE;
    use asap_sim::SystemConfig;

    fn pm_line(i: u64) -> LineAddr {
        LineAddr(PM_BASE / 64 + i)
    }

    /// Small config with the hop pinned to 16 cycles and eager draining so
    /// the exact-time assertions below stay readable.
    fn test_cfg() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.mem.mc_hop_latency = 16;
        c.mem.wpq_residency = 0;
        c
    }

    fn setup() -> (MemSystem, MemoryImage) {
        (MemSystem::new(&test_cfg()), MemoryImage::new())
    }

    fn dpo(line: LineAddr, byte: u8, rid: Option<Rid>) -> PersistOp {
        PersistOp::new(PersistKind::Dpo, line, [byte; 64], rid)
    }

    #[test]
    fn accept_then_write_reaches_image() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(0), 5, None), Cycle(0));
        mem.advance_to(Cycle(100_000), &mut image);
        let mut accepted = 0;
        let mut written = 0;
        while let Some(e) = mem.pop_event() {
            match e {
                MemEvent::Accepted { at, ack_at, .. } => {
                    accepted += 1;
                    assert_eq!(at, Cycle(16)); // one hop
                    assert_eq!(ack_at, Cycle(32));
                }
                MemEvent::PmWritten { at, .. } => {
                    written += 1;
                    assert_eq!(at, Cycle(16 + 12)); // + write service
                }
            }
        }
        assert_eq!((accepted, written), (1, 1));
        assert_eq!(image.read_line(pm_line(0))[0], 5);
        assert!(mem.is_idle());
    }

    #[test]
    fn wpq_backpressure_queues_arrivals() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 2;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..5 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        // Advance just past arrival: only 2 accepted, 3 pending.
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(mem.wpq_len(0), 2);
        assert_eq!(mem.pending_len(0), 3);
        // Full drain accepts and writes everything.
        mem.advance_to(Cycle(100_000), &mut image);
        assert_eq!(mem.wpq_len(0), 0);
        assert_eq!(mem.stats().get("pm.write.total"), 5);
        assert_eq!(mem.stats().get("mem.wpq.full_arrival"), 3);
    }

    #[test]
    fn drain_is_bandwidth_limited() {
        let mut cfg = test_cfg();
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..4 {
            mem.submit(dpo(pm_line(i), 0, None), Cycle(0));
        }
        mem.advance_to(Cycle(1_000_000), &mut image);
        let mut last_write = Cycle::ZERO;
        let mut writes = Vec::new();
        while let Some(e) = mem.pop_event() {
            if let MemEvent::PmWritten { at, .. } = e {
                writes.push(at);
                last_write = at;
            }
        }
        assert_eq!(writes.len(), 4);
        // Serial service: 16 (hop) + 12*k.
        assert_eq!(last_write, Cycle(16 + 12 * 4));
    }

    #[test]
    fn pm_latency_multiplier_slows_service() {
        let cfg = test_cfg().with_pm_latency_mult(4);
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 0, None), Cycle(0));
        mem.advance_to(Cycle(1_000_000), &mut image);
        let mut written_at = None;
        while let Some(e) = mem.pop_event() {
            if let MemEvent::PmWritten { at, .. } = e {
                written_at = Some(at);
            }
        }
        assert_eq!(written_at, Some(Cycle(16 + 48)));
        assert_eq!(mem.read_latency(pm_line(0)), 16 + 600);
        assert_eq!(mem.read_latency(LineAddr(0)), 16 + 150); // DRAM side
    }

    #[test]
    fn read_forwards_from_wpq() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(8), &[1u8; 64]);
        mem.submit(dpo(pm_line(8), 2, None), Cycle(0));
        mem.advance_to(Cycle(17), &mut image); // accepted, not yet written
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(data[0], 2);
        assert_eq!(mem.stats().get("mem.read.forwarded"), 1);
    }

    #[test]
    fn read_forwards_newest_entry() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(4), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(4), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // first accepted, second pending
        let (data, _) = mem.read_for_fill(pm_line(4), &image);
        assert_eq!(data[0], 2, "must forward the newest (pending) write");
    }

    #[test]
    fn read_forwards_from_ops_still_on_the_wire() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(8), &[1u8; 64]);
        mem.submit(dpo(pm_line(8), 3, None), Cycle(0));
        // Do NOT advance: the op has not even arrived at its controller.
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(
            data[0], 3,
            "a just-evicted line must read its own writeback"
        );
    }

    #[test]
    fn forwarding_stops_once_the_write_reaches_media() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(8), 4, None), Cycle(0));
        mem.advance_to(Cycle(100_000), &mut image); // accepted and drained
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(data[0], 4, "data now comes from the image");
        assert_eq!(
            mem.stats().get("mem.read.forwarded"),
            0,
            "a drained op must leave the store-forward index"
        );
    }

    #[test]
    fn dropped_op_is_not_forwarded() {
        let (mut mem, mut image) = setup();
        let r1 = Rid::new(0, 1);
        let r2 = Rid::new(0, 2);
        image.write_line(pm_line(0), &[9u8; 64]);
        // Sacrificial op occupies the write engine so the next one stays
        // droppable in the WPQ.
        mem.submit(dpo(pm_line(4), 0, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 1, Some(r1)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(mem.drop_pending_dpo(pm_line(0), r2), 1);
        let (data, _) = mem.read_for_fill(pm_line(0), &image);
        assert_eq!(data[0], 9, "dropped write must not forward; image wins");
        assert_eq!(mem.stats().get("mem.read.forwarded"), 0);
    }

    #[test]
    fn crash_flush_clears_the_forward_index() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(1), 2, None), Cycle(0)); // stays pending
        mem.advance_to(Cycle(16), &mut image);
        mem.flush_to_image(&mut image);
        // Neither the flushed op (now in the image) nor the lost pending
        // op may forward after the crash.
        let (a, _) = mem.read_for_fill(pm_line(0), &image);
        let (b, _) = mem.read_for_fill(pm_line(1), &image);
        assert_eq!((a[0], b[0]), (1, 0));
        assert_eq!(mem.stats().get("mem.read.forwarded"), 0);
    }

    #[test]
    fn read_falls_back_to_image() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(3), &[9u8; 64]);
        image.mark_persistent(pm_line(3).base(), 64);
        let (data, pbit) = mem.read_for_fill(pm_line(3), &image);
        assert_eq!(data[0], 9);
        assert!(pbit);
    }

    #[test]
    fn lpo_dropping_removes_region_log_writes() {
        let (mut mem, mut image) = setup();
        let rid = Rid::new(0, 1);
        let nch = mem.num_channels() as u64;
        // All ops on one channel; the first occupies the write engine so
        // the rest stay droppable in the WPQ.
        mem.submit(dpo(pm_line(0), 0, None), Cycle(0));
        let mut lpo = PersistOp::new(PersistKind::Lpo, pm_line(nch), [1; 64], Some(rid));
        lpo.logged_data_line = Some(pm_line(9));
        mem.submit(lpo, Cycle(0));
        mem.submit(
            PersistOp::new(PersistKind::LogHeader, pm_line(2 * nch), [2; 64], Some(rid)),
            Cycle(0),
        );
        mem.submit(dpo(pm_line(3 * nch), 3, Some(rid)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // all accepted, first in flight
        while mem.pop_event().is_some() {}
        let dropped = mem.drop_log_writes_of(rid);
        assert_eq!(dropped, 2, "both log writes dropped");
        mem.advance_to(Cycle(100_000), &mut image);
        let log_writes = mem.stats().get("pm.write.lpo") + mem.stats().get("pm.write.log_header");
        assert_eq!(log_writes, 0);
        assert_eq!(mem.stats().get("pm.write.dpo"), 2); // DPOs untouched
    }

    #[test]
    fn dpo_dropping_matches_line_and_skips_own_region() {
        let (mut mem, mut image) = setup();
        let r1 = Rid::new(0, 1);
        let r2 = Rid::new(0, 2);
        // Occupy the write engine with an unrelated sacrificial op so the
        // DPO of interest stays droppable (not in flight).
        mem.submit(dpo(pm_line(4), 0, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 1, Some(r1)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(
            mem.drop_pending_dpo(pm_line(0), r1),
            0,
            "own region's DPO kept"
        );
        assert_eq!(mem.drop_pending_dpo(pm_line(8), r2), 0, "other line kept");
        assert_eq!(
            mem.drop_pending_dpo(pm_line(0), r2),
            1,
            "earlier region's DPO dropped"
        );
        mem.advance_to(Cycle(100_000), &mut image);
        assert_eq!(mem.stats().get("pm.write.dpo"), 1); // only sacrificial one
        assert_eq!(mem.stats().get("pm.drop.dpo"), 1);
    }

    #[test]
    fn crash_flush_applies_accepted_discards_pending() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(1), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // first accepted, second pending
        mem.flush_to_image(&mut image);
        assert_eq!(
            image.read_line(pm_line(0))[0],
            1,
            "accepted entry flushed (ADR)"
        );
        assert_eq!(image.read_line(pm_line(1))[0], 0, "unaccepted entry lost");
        assert_eq!(mem.stats().get("crash.flushed"), 1);
        assert_eq!(mem.stats().get("crash.lost_unaccepted"), 1);
        assert!(mem.is_idle());
    }

    #[test]
    fn same_line_writes_apply_in_order_on_flush() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        mem.flush_to_image(&mut image);
        assert_eq!(image.read_line(pm_line(0))[0], 2, "newest write wins");
    }

    #[test]
    fn channel_interleaving_by_line() {
        let (mem, _) = setup();
        let n = mem.num_channels() as u64;
        assert!(n >= 2);
        assert_ne!(mem.channel_of(LineAddr(0)), mem.channel_of(LineAddr(1)));
        assert_eq!(mem.channel_of(LineAddr(0)), mem.channel_of(LineAddr(n)));
    }

    #[test]
    fn lazy_drain_waits_for_residency() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 500;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        // Long after acceptance but before residency expiry: still queued.
        mem.advance_to(Cycle(400), &mut image);
        assert_eq!(mem.stats().get("pm.write.total"), 0, "write rests in WPQ");
        assert_eq!(mem.wpq_len(mem.channel_of(pm_line(0))), 1);
        // After expiry it drains.
        mem.advance_to(Cycle(10_000), &mut image);
        assert_eq!(mem.stats().get("pm.write.total"), 1);
        assert_eq!(image.read_line(pm_line(0))[0], 1);
    }

    #[test]
    fn lazy_drain_gives_drops_a_window() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 1000;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        let rid = Rid::new(0, 1);
        mem.submit(
            PersistOp::new(PersistKind::Lpo, pm_line(0), [1; 64], Some(rid)),
            Cycle(0),
        );
        mem.advance_to(Cycle(200), &mut image); // accepted, resting
        assert_eq!(mem.drop_log_writes_of(rid), 1, "droppable while resting");
        mem.advance_to(Cycle(10_000), &mut image);
        assert_eq!(
            mem.stats().get("pm.write.total"),
            0,
            "dropped, never written"
        );
    }

    #[test]
    fn watermark_overrides_residency() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 100_000;
        cfg.mem.wpq_drain_watermark = 2;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..4 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        // Occupancy (4) exceeds the watermark (2): drains without waiting
        // out the residency.
        mem.advance_to(Cycle(5_000), &mut image);
        assert!(mem.stats().get("pm.write.total") >= 2);
    }

    #[test]
    fn dram_writeback_is_immediate() {
        let (mut mem, mut image) = setup();
        mem.dram_writeback(&mut image, LineAddr(5), &[3u8; 64]);
        assert_eq!(image.read_line(LineAddr(5))[0], 3);
        assert_eq!(mem.stats().get("dram.write.writeback"), 1);
        assert_eq!(mem.stats().get("pm.write.total"), 0);
    }

    #[test]
    fn fwd_slab_reuses_nodes_after_drain() {
        let mut cfg = test_cfg();
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        // Warm up: a burst of ops grows the node slab, then drains fully.
        for round in 0..3u64 {
            for i in 0..8 {
                mem.submit(dpo(pm_line(i), round as u8, None), Cycle(round * 10_000));
            }
            mem.advance_to(Cycle((round + 1) * 10_000 - 1), &mut image);
        }
        let ch = &mem.channels[0];
        assert!(ch.by_line.is_empty(), "all ops drained");
        let arena = ch.fwd_nodes.len();
        assert_eq!(ch.fwd_free.len(), arena, "every node back on the freelist");
        // Steady state: the same traffic shape must not grow the arena.
        for i in 0..8 {
            mem.submit(dpo(pm_line(i), 9, None), Cycle(40_000));
        }
        mem.advance_to(Cycle(50_000), &mut image);
        let ch = &mem.channels[0];
        assert_eq!(ch.fwd_nodes.len(), arena, "nodes recycled, none allocated");
        assert_eq!(ch.fwd_free.len(), arena);
    }

    #[test]
    fn fwd_slab_resets_on_crash_flush() {
        let (mut mem, mut image) = setup();
        for i in 0..6 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        mem.advance_to(Cycle(20), &mut image); // some accepted, none drained
        mem.flush_to_image(&mut image);
        for ch in &mem.channels {
            assert!(ch.by_line.is_empty(), "index emptied by crash flush");
            assert!(ch.fwd_nodes.is_empty());
            assert!(ch.fwd_free.is_empty());
        }
        // Post-recovery traffic rebuilds the index from scratch.
        mem.submit(dpo(pm_line(0), 7, None), Cycle(100));
        let (data, _) = mem.read_for_fill(pm_line(0), &image);
        assert_eq!(data[0], 7);
    }

    /// Everything observable after a mixed-traffic run: the event stream,
    /// final stats, hottest lines, touched image contents, and how many
    /// parallel windows engaged.
    type TrafficObservables = (Vec<String>, Stats, Vec<(u64, u64)>, Vec<[u8; 64]>, u64);

    /// Drives one MemSystem through a pseudo-random mixed workload —
    /// bursts, backpressure, lazy drains, LPO/DPO drops — and returns
    /// every observable output.
    fn run_mixed_traffic(cfg: &SystemConfig, parallel: Option<usize>) -> TrafficObservables {
        let mut mem = MemSystem::new(cfg);
        if let Some(jobs) = parallel {
            mem.force_parallel(jobs, 0);
        }
        mem.set_hot_line_tracking(true);
        let mut image = MemoryImage::new();
        let mut events = Vec::new();
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let mut t = 0u64;
        for round in 0..50u64 {
            for _ in 0..12 {
                let x = step();
                let line = pm_line(x >> 58);
                let kind = match (x >> 32) % 4 {
                    0 => PersistKind::Lpo,
                    1 => PersistKind::LogHeader,
                    2 => PersistKind::WriteBack,
                    _ => PersistKind::Dpo,
                };
                let rid = ((x >> 20) % 3 != 0).then(|| Rid::new(0, 1 + (x >> 16) % 3));
                mem.submit(PersistOp::new(kind, line, [x as u8; 64], rid), Cycle(t));
                t += x % 37;
            }
            let x = step();
            t += 100 + x % 300;
            mem.advance_to(Cycle(t), &mut image);
            while let Some(e) = mem.pop_event() {
                events.push(format!("{e:?}"));
            }
            if round % 7 == 3 {
                mem.drop_log_writes_of(Rid::new(0, 1 + round % 3));
            }
            if round % 11 == 5 {
                mem.drop_pending_dpo(pm_line(step() >> 58), Rid::new(0, 1));
            }
        }
        mem.advance_to(Cycle(t + 1_000_000), &mut image);
        while let Some(e) = mem.pop_event() {
            events.push(format!("{e:?}"));
        }
        assert!(mem.is_idle());
        let lines = (0..64).map(|i| image.read_line(pm_line(i))).collect();
        let windows = mem.domain_metrics().1;
        (
            events,
            mem.stats().clone(),
            mem.hottest_lines(16),
            lines,
            windows,
        )
    }

    #[test]
    fn parallel_windows_match_serial_bit_exactly() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 3; // backpressure: pending queues engage
        let serial = run_mixed_traffic(&cfg, None);
        for jobs in [2, 4, 7] {
            let par = run_mixed_traffic(&cfg, Some(jobs));
            assert!(par.4 > 0, "parallel path must actually engage");
            assert_eq!(serial.0, par.0, "event stream must be bit-identical");
            assert_eq!(serial.1, par.1, "stats must be bit-identical");
            assert_eq!(serial.2, par.2, "hottest lines must match");
            assert_eq!(serial.3, par.3, "image contents must match");
        }
    }

    #[test]
    fn parallel_windows_match_serial_with_lazy_drain() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 500; // DrainCheck events cross windows
        cfg.mem.wpq_drain_watermark = 4;
        let serial = run_mixed_traffic(&cfg, None);
        let par = run_mixed_traffic(&cfg, Some(4));
        assert!(par.4 > 0, "parallel path must actually engage");
        assert_eq!(serial.0, par.0);
        assert_eq!(serial.1, par.1);
        assert_eq!(serial.2, par.2);
        assert_eq!(serial.3, par.3);
    }

    #[test]
    fn parallel_window_preserves_crash_flush_state() {
        // Crash mid-traffic: surviving wheel entries were seq-remapped by
        // the window merge; the flush must still see every live op.
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 400;
        let run = |parallel: Option<usize>| {
            let mut mem = MemSystem::new(&cfg);
            if let Some(jobs) = parallel {
                mem.force_parallel(jobs, 0);
            }
            let mut image = MemoryImage::new();
            for i in 0..40u64 {
                mem.submit(dpo(pm_line(i % 24), i as u8, None), Cycle(i * 7));
            }
            mem.advance_to(Cycle(350), &mut image);
            while mem.pop_event().is_some() {}
            mem.flush_to_image(&mut image);
            let lines: Vec<[u8; 64]> = (0..24).map(|i| image.read_line(pm_line(i))).collect();
            (lines, mem.stats().clone())
        };
        assert_eq!(run(None), run(Some(4)));
    }

    #[test]
    fn fwd_list_removal_handles_middle_and_tail() {
        // Three live ops on one line (wpq_entries=1 keeps two pending), then
        // drain them one at a time: unindex removes head, middle, and tail
        // positions while read_for_fill keeps seeing the newest write.
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 2, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 3, None), Cycle(0));
        for _ in 0..3 {
            let (data, _) = mem.read_for_fill(pm_line(0), &image);
            assert_eq!(data[0], 3, "newest live write forwards");
            let before = mem.stats().get("pm.write.total");
            let mut t = 16;
            while mem.stats().get("pm.write.total") == before {
                t += 1;
                mem.advance_to(Cycle(t), &mut image);
                assert!(t < 1_000_000, "drain must make progress");
            }
        }
        assert!(mem.channels[0].by_line.is_empty());
        assert_eq!(image.read_line(pm_line(0))[0], 3, "newest wins on media");
    }
}
