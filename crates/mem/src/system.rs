//! Memory controllers: WPQ acceptance, drain to PM, dropping, crash flush.
//!
//! Each memory channel owns a Write Pending Queue (WPQ). Per §4.1 the WPQ
//! is inside the persistence domain (ADR flushes it on power failure), so a
//! persist operation is *complete* the moment it is accepted into the WPQ.
//! The channel drains accepted entries to the PM media at a bandwidth-
//! limited service rate; entries still in the WPQ can be *dropped* by the
//! §5.1 traffic optimizations (LPO dropping, DPO dropping) and then never
//! cost PM write traffic.
//!
//! Host-side hot-path structure: the WPQ is a seq-ordered `VecDeque` whose
//! front is always the in-flight entry (drain picks the minimum sequence
//! number, which is the front of a FIFO), and every channel keeps a
//! line-address index over all of its *live* ops — on the wire, queued
//! behind a full WPQ, or resting in the WPQ — so store-forwarding reads
//! ([`MemSystem::read_for_fill`]) are one hash lookup instead of a scan of
//! the WPQ, the pending queue, and the whole event queue.

use std::collections::VecDeque;

use asap_pmem::{AddrMap, LineAddr, MemoryImage};
use asap_sim::{Cycle, EventQueue, MemConfig, Stats, Trace, TraceEvent, TraceSettings};

use crate::persist::{MemEvent, OpId, PersistKind, PersistOp};
use crate::rid::Rid;

/// An accepted WPQ entry.
#[derive(Clone, Debug)]
struct WpqSlot {
    id: OpId,
    op: PersistOp,
    /// FIFO drain order within the channel.
    seq: u64,
    /// Acceptance time (drains after the residency window).
    accepted_at: Cycle,
}

/// Static counter name for a submission of `kind` — the same names
/// `format!("mem.submit.{}", kind.name())` produced, without a per-op
/// allocation on the submit hot path.
fn submit_counter(kind: PersistKind) -> &'static str {
    match kind {
        PersistKind::Lpo => "mem.submit.lpo",
        PersistKind::LogHeader => "mem.submit.log_header",
        PersistKind::Dpo => "mem.submit.dpo",
        PersistKind::WriteBack => "mem.submit.writeback",
        PersistKind::SwPersist => "mem.submit.sw_persist",
        PersistKind::Marker => "mem.submit.marker",
    }
}

/// Static counter name for a media write of `kind` (see [`submit_counter`]).
fn pm_write_counter(kind: PersistKind) -> &'static str {
    match kind {
        PersistKind::Lpo => "pm.write.lpo",
        PersistKind::LogHeader => "pm.write.log_header",
        PersistKind::Dpo => "pm.write.dpo",
        PersistKind::WriteBack => "pm.write.writeback",
        PersistKind::SwPersist => "pm.write.sw_persist",
        PersistKind::Marker => "pm.write.marker",
    }
}

/// Internal channel events.
#[derive(Clone, Debug)]
enum ChEvent {
    Arrive(OpId, PersistOp, Cycle),
    WriteDone(OpId),
    /// Residency expiry check: start draining if an entry is overdue.
    DrainCheck,
}

/// Freelist/list terminator for the store-forward node slab.
const FWD_NIL: u32 = u32::MAX;

/// One node of a per-line store-forward list, slab-allocated so indexing
/// and unindexing an op never touches the heap at steady state (the old
/// layout kept a `Vec` per live line, paying an allocation and a free for
/// every single-op line — i.e. for almost every persist op).
#[derive(Clone, Debug)]
struct FwdNode {
    id: OpId,
    data: [u8; 64],
    /// Next (newer) op targeting the same line, or [`FWD_NIL`].
    next: u32,
}

/// One memory channel: WPQ plus the PM write engine.
#[derive(Debug)]
struct Channel {
    capacity: usize,
    /// Accepted entries in sequence order. When `writing` is `Some`, the
    /// in-flight entry is always the front: drain selects the minimum
    /// sequence number, acceptance appends increasing sequence numbers, and
    /// drops never remove the in-flight entry.
    wpq: VecDeque<WpqSlot>,
    /// Arrived while the WPQ was full; accepted as slots free (FIFO).
    /// Each entry remembers its original submit time.
    pending: VecDeque<(OpId, PersistOp, Cycle)>,
    /// Entry currently being written to the media, if any.
    writing: Option<OpId>,
    next_seq: u64,
    /// Store-forward index: every live op targeting this channel (on the
    /// wire, pending, or in the WPQ), per line, as a `(head, tail)` list
    /// of slab nodes in submission-id order — the newest write to a line
    /// is the tail node. Maintained on submit, media write, drop, and
    /// crash flush.
    by_line: AddrMap<LineAddr, (u32, u32)>,
    /// Node arena for `by_line`, recycled through `fwd_free`.
    fwd_nodes: Vec<FwdNode>,
    fwd_free: Vec<u32>,
}

impl Channel {
    fn new(capacity: usize) -> Self {
        Channel {
            capacity,
            wpq: VecDeque::new(),
            pending: VecDeque::new(),
            writing: None,
            next_seq: 0,
            by_line: AddrMap::default(),
            fwd_nodes: Vec::new(),
            fwd_free: Vec::new(),
        }
    }

    fn has_free_slot(&self) -> bool {
        self.wpq.len() < self.capacity
    }

    /// Adds an op to the store-forward index. Ids are monotonic, so
    /// appending at the tail keeps each per-line list sorted by id.
    fn index(&mut self, line: LineAddr, id: OpId, data: [u8; 64]) {
        let node = FwdNode {
            id,
            data,
            next: FWD_NIL,
        };
        let n = match self.fwd_free.pop() {
            Some(n) => {
                self.fwd_nodes[n as usize] = node;
                n
            }
            None => {
                self.fwd_nodes.push(node);
                (self.fwd_nodes.len() - 1) as u32
            }
        };
        match self.by_line.entry(line) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let tail = e.get().1;
                self.fwd_nodes[tail as usize].next = n;
                e.get_mut().1 = n;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((n, n));
            }
        }
    }

    /// The newest live write to `line`, if any.
    fn newest(&self, line: LineAddr) -> Option<&[u8; 64]> {
        let (_, tail) = self.by_line.get(&line)?;
        Some(&self.fwd_nodes[*tail as usize].data)
    }

    /// Removes one op from the store-forward index (it left the live set).
    /// Per-line lists are short (usually one node: a drained op is the
    /// oldest for its line, i.e. the head), so the walk is effectively
    /// constant time.
    fn unindex(&mut self, line: LineAddr, id: OpId) {
        let &(head, tail) = self.by_line.get(&line).expect("live op must be indexed");
        let mut prev = FWD_NIL;
        let mut cur = head;
        loop {
            let n = &self.fwd_nodes[cur as usize];
            if n.id == id {
                break;
            }
            prev = cur;
            cur = n.next;
            assert_ne!(cur, FWD_NIL, "live op must be indexed");
        }
        let next = self.fwd_nodes[cur as usize].next;
        if prev == FWD_NIL {
            if next == FWD_NIL {
                self.by_line.remove(&line);
            } else {
                self.by_line.insert(line, (next, tail));
            }
        } else {
            self.fwd_nodes[prev as usize].next = next;
            if cur == tail {
                self.by_line.insert(line, (head, prev));
            }
        }
        self.fwd_free.push(cur);
    }

    /// Empties the store-forward index (crash flush). The node arena and
    /// map buckets keep their capacity for reuse after recovery.
    fn clear_index(&mut self) {
        self.by_line.clear();
        self.fwd_nodes.clear();
        self.fwd_free.clear();
    }
}

/// The memory system: all channels, their WPQs, and PM/DRAM timing.
///
/// Drive it with [`submit`](Self::submit) (send a persist op), then
/// [`advance_to`](Self::advance_to) (process internal events up to a time)
/// and [`pop_event`](Self::pop_event) (collect acceptance/write
/// notifications).
///
/// # Example
///
/// ```
/// use asap_mem::{MemSystem, PersistKind, PersistOp, MemEvent};
/// use asap_pmem::{LineAddr, MemoryImage, PM_BASE};
/// use asap_sim::{Cycle, SystemConfig};
///
/// let cfg = SystemConfig::small();
/// let mut image = MemoryImage::new();
/// let mut mem = MemSystem::new(&cfg);
/// let line = LineAddr(PM_BASE / 64);
/// let op = PersistOp::new(PersistKind::Dpo, line, [9u8; 64], None);
/// mem.submit(op, Cycle(0));
/// mem.advance_to(Cycle(10_000), &mut image);
/// assert!(matches!(mem.pop_event(), Some(MemEvent::Accepted { .. })));
/// assert!(matches!(mem.pop_event(), Some(MemEvent::PmWritten { .. })));
/// assert_eq!(image.read_line(line)[0], 9);
/// ```
pub struct MemSystem {
    cfg: MemConfig,
    channels: Vec<Channel>,
    events: EventQueue<(u32, ChEvent)>,
    out: VecDeque<MemEvent>,
    next_id: u64,
    stats: Stats,
    trace: Trace,
    /// PM media writes per line, kept only when telemetry asks for the
    /// hottest-lines table (`None` = tracking off, zero overhead).
    line_writes: Option<AddrMap<LineAddr, u64>>,
}

impl MemSystem {
    /// Builds the memory system from a full system configuration.
    pub fn new(cfg: &asap_sim::SystemConfig) -> Self {
        let mem = cfg.mem;
        let n = mem.num_channels();
        MemSystem {
            cfg: mem,
            channels: (0..n)
                .map(|_| Channel::new(mem.wpq_entries as usize))
                .collect(),
            events: EventQueue::new(),
            out: VecDeque::new(),
            next_id: 0,
            stats: Stats::new(),
            trace: Trace::disabled(),
            line_writes: None,
        }
    }

    /// Reconfigures event tracing (records `WpqAccept`/`WpqDrain` with the
    /// channel as the trace thread id).
    pub fn set_trace_settings(&mut self, settings: TraceSettings) {
        self.trace = Trace::new(settings);
    }

    /// Turns per-line PM write counting on or off (the telemetry report's
    /// hottest-lines table). Off by default; resets counts when toggled.
    pub fn set_hot_line_tracking(&mut self, on: bool) {
        self.line_writes = on.then(AddrMap::default);
    }

    /// The `n` most-written PM lines as `(line, media_writes)`, hottest
    /// first (ties by line address). Empty unless tracking is on.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let Some(map) = &self.line_writes else {
            return Vec::new();
        };
        let mut v: Vec<(u64, u64)> = map.iter().map(|(l, c)| (l.0, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The memory-side event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The channel serving `line` (interleaved by line address).
    pub fn channel_of(&self, line: LineAddr) -> u32 {
        (line.0 % self.channels.len() as u64) as u32
    }

    /// Submits a persist operation at time `now`; it arrives at its channel
    /// one on-chip hop later. Returns the op's id.
    pub fn submit(&mut self, op: PersistOp, now: Cycle) -> OpId {
        let id = OpId(self.next_id);
        self.next_id += 1;
        let ch = self.channel_of(op.target);
        self.stats.bump(submit_counter(op.kind));
        self.channels[ch as usize].index(op.target, id, op.data);
        self.events.push(
            now + self.cfg.mc_hop_latency,
            (ch, ChEvent::Arrive(id, op, now)),
        );
        id
    }

    /// Latency of a demand read of `line` (beyond the LLC lookup): one hop
    /// to the controller plus the media access.
    pub fn read_latency(&self, line: LineAddr) -> u64 {
        let media = if line.is_pm_region() {
            self.cfg.pm_latency()
        } else {
            self.cfg.dram_latency
        };
        self.cfg.mc_hop_latency + media
    }

    /// Reads `line` for a cache fill, forwarding the newest matching write
    /// wherever it currently is — resting in the WPQ, queued behind a full
    /// WPQ, or still on the wire to its controller — before falling back
    /// to the image. (A line evicted and immediately re-read must observe
    /// its own writeback.) Returns the line data and its page-table
    /// persistent bit.
    pub fn read_for_fill(&mut self, line: LineAddr, image: &MemoryImage) -> ([u8; 64], bool) {
        let ch = &self.channels[self.channel_of(line) as usize];
        // The per-line node list is in submission order, so the newest
        // matching write — wherever it currently travels — is the tail.
        let newest = ch.newest(line);
        let pbit = image.line_is_persistent(line);
        match newest {
            Some(data) => {
                let data = *data;
                self.stats.bump("mem.read.forwarded");
                (data, pbit)
            }
            None => (image.read_line(line), pbit),
        }
    }

    /// Advances internal channel state to `now`, applying media writes to
    /// `image` and queueing [`MemEvent`]s for [`pop_event`](Self::pop_event).
    pub fn advance_to(&mut self, now: Cycle, image: &mut MemoryImage) {
        while let Some((t, (ch, ev))) = self.events.pop_until(now) {
            self.handle(t, ch as usize, ev, image);
        }
    }

    /// Next internal event time, if any work is outstanding.
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.events.peek_time()
    }

    /// Pops the next acceptance / PM-write notification.
    pub fn pop_event(&mut self) -> Option<MemEvent> {
        self.out.pop_front()
    }

    /// Whether all channels are fully drained and no events are pending.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
            && self.out.is_empty()
            && self
                .channels
                .iter()
                .all(|c| c.wpq.is_empty() && c.pending.is_empty() && c.writing.is_none())
    }

    fn handle(&mut self, t: Cycle, ch_idx: usize, ev: ChEvent, image: &mut MemoryImage) {
        match ev {
            ChEvent::Arrive(id, op, submitted) => {
                let ch = &mut self.channels[ch_idx];
                if ch.has_free_slot() {
                    self.accept(t, ch_idx, id, op, submitted);
                } else {
                    ch.pending.push_back((id, op, submitted));
                    self.stats.bump("mem.wpq.full_arrival");
                }
                self.maybe_start_write(t, ch_idx);
            }
            ChEvent::WriteDone(id) => {
                let ch = &mut self.channels[ch_idx];
                debug_assert_eq!(ch.writing, Some(id), "write-done for wrong op");
                ch.writing = None;
                let slot = ch.wpq.pop_front().expect("in-flight slot missing");
                debug_assert_eq!(slot.id, id, "in-flight slot must be the front");
                ch.unindex(slot.op.target, slot.id);
                image.write_line(slot.op.target, &slot.op.data);
                self.stats.bump(pm_write_counter(slot.op.kind));
                self.stats.bump("pm.write.total");
                if let Some(map) = &mut self.line_writes {
                    *map.entry(slot.op.target).or_insert(0) += 1;
                }
                let residency = t.since(slot.accepted_at);
                self.stats.sample("mem.wpq.residency_cycles", residency);
                self.trace.emit(
                    t,
                    ch_idx as u32,
                    TraceEvent::WpqDrain {
                        channel: ch_idx as u32,
                        kind: slot.op.kind.name(),
                        residency,
                    },
                );
                self.out.push_back(MemEvent::PmWritten {
                    id: slot.id,
                    op: slot.op,
                    at: t,
                });
                // A slot freed: accept the oldest pending arrival, if any.
                if let Some((pid, pop, psub)) = self.channels[ch_idx].pending.pop_front() {
                    self.accept(t, ch_idx, pid, pop, psub);
                }
                self.maybe_start_write(t, ch_idx);
            }
            ChEvent::DrainCheck => {
                self.maybe_start_write(t, ch_idx);
            }
        }
    }

    fn accept(&mut self, t: Cycle, ch_idx: usize, id: OpId, op: PersistOp, submitted: Cycle) {
        let ch = &mut self.channels[ch_idx];
        debug_assert!(ch.has_free_slot());
        let seq = ch.next_seq;
        ch.next_seq += 1;
        ch.wpq.push_back(WpqSlot {
            id,
            op,
            seq,
            accepted_at: t,
        });
        self.stats.sample("mem.wpq.occupancy", ch.wpq.len() as u64);
        // Persist latency: submit to persistence-domain acceptance (the
        // durability point under ADR, §4.1).
        self.stats.sample("mem.persist.latency", t.since(submitted));
        self.trace.emit(
            t,
            ch_idx as u32,
            TraceEvent::WpqAccept {
                channel: ch_idx as u32,
                kind: op.kind.name(),
            },
        );
        if self.cfg.wpq_residency > 0 {
            // Lazy drain: revisit this entry when its residency expires.
            self.events.push(
                t + self.cfg.wpq_residency,
                (ch_idx as u32, ChEvent::DrainCheck),
            );
        }
        self.out.push_back(MemEvent::Accepted {
            id,
            op,
            at: t,
            ack_at: t + self.cfg.mc_hop_latency,
        });
    }

    /// Starts draining if warranted: always when an entry is past its
    /// residency window or the queue is above the watermark; immediately
    /// when residency is 0 (eager mode).
    fn maybe_start_write(&mut self, t: Cycle, ch_idx: usize) {
        let service = self.cfg.pm_write_service();
        let residency = self.cfg.wpq_residency;
        let watermark = self.cfg.wpq_drain_watermark as usize;
        let ch = &mut self.channels[ch_idx];
        if ch.writing.is_some() {
            return;
        }
        // No write in flight, so the oldest (minimum-seq) entry is the
        // front of the seq-ordered queue.
        let Some(slot) = ch.wpq.front() else {
            return;
        };
        let due = residency == 0 || ch.wpq.len() >= watermark || slot.accepted_at + residency <= t;
        if due {
            let id = slot.id;
            ch.writing = Some(id);
            self.events
                .push(t + service, (ch_idx as u32, ChEvent::WriteDone(id)));
        }
    }

    /// Drops a committed region's log writes (LPOs and log headers) still
    /// sitting in WPQs — LPO dropping, §5.1. Returns how many were dropped.
    pub fn drop_log_writes_of(&mut self, rid: Rid) -> u64 {
        let mut dropped = 0;
        for ch_idx in 0..self.channels.len() {
            dropped += self.drop_matching(ch_idx, |op| {
                matches!(op.kind, PersistKind::Lpo | PersistKind::LogHeader) && op.rid == Some(rid)
            });
        }
        self.stats.add("pm.drop.lpo", dropped);
        dropped
    }

    /// Drops an earlier region's pending DPO to `line` when a later
    /// region's LPO for the same line arrives (they carry the same bytes) —
    /// DPO dropping, §5.1. Returns how many were dropped (0 or 1).
    pub fn drop_pending_dpo(&mut self, line: LineAddr, later_region: Rid) -> u64 {
        let ch_idx = self.channel_of(line) as usize;
        let dropped = self.drop_matching(ch_idx, |op| {
            op.kind == PersistKind::Dpo && op.target == line && op.rid != Some(later_region)
        });
        self.stats.add("pm.drop.dpo", dropped);
        dropped
    }

    /// Removes all non-in-flight WPQ slots matching `pred`; frees slots are
    /// refilled from the pending queue. Dropped ops emit no events.
    fn drop_matching(&mut self, ch_idx: usize, pred: impl Fn(&PersistOp) -> bool) -> u64 {
        let writing = self.channels[ch_idx].writing;
        let mut removed: Vec<(LineAddr, OpId)> = Vec::new();
        self.channels[ch_idx].wpq.retain(|s| {
            if Some(s.id) == writing || !pred(&s.op) {
                true
            } else {
                removed.push((s.op.target, s.id));
                false
            }
        });
        let dropped = removed.len() as u64;
        for (line, id) in removed {
            self.channels[ch_idx].unindex(line, id);
        }
        for _ in 0..dropped {
            if !self.channels[ch_idx].has_free_slot() {
                break;
            }
            match self.channels[ch_idx].pending.pop_front() {
                Some((pid, pop, psub)) => {
                    // Accept at the time the channel last made progress; we
                    // use the next event horizon conservatively: acceptance
                    // is immediate bookkeeping, timestamped "now-ish" via
                    // the earliest pending event or zero. The scheme only
                    // cares about ordering, which is preserved.
                    let t = self.events.peek_time().unwrap_or(Cycle::ZERO);
                    self.accept(t, ch_idx, pid, pop, psub);
                }
                None => break,
            }
        }
        dropped
    }

    /// Power failure: ADR flushes every accepted WPQ entry (including the
    /// in-flight one) to the media. Unaccepted pending arrivals are lost.
    /// Internal state is cleared.
    pub fn flush_to_image(&mut self, image: &mut MemoryImage) {
        for ch in &mut self.channels {
            // The WPQ is kept in seq order, so iterating front-to-back
            // applies same-line writes oldest-first (the newest wins).
            let slots = std::mem::take(&mut ch.wpq);
            debug_assert!(slots
                .iter()
                .zip(slots.iter().skip(1))
                .all(|(a, b)| a.seq < b.seq));
            for s in &slots {
                image.write_line(s.op.target, &s.op.data);
                self.stats.bump("crash.flushed");
            }
            let lost = ch.pending.len() as u64;
            self.stats.add("crash.lost_unaccepted", lost);
            ch.pending.clear();
            ch.writing = None;
            // Every live op either reached the image (WPQ) or was lost
            // (pending / on the wire): nothing is forwardable any more.
            ch.clear_index();
        }
        // Ops still travelling to their controller (unprocessed arrival
        // events) never reached the persistence domain either.
        let mut on_the_wire = 0;
        while let Some((_, (_, ev))) = self.events.pop() {
            if matches!(ev, ChEvent::Arrive(..)) {
                on_the_wire += 1;
            }
        }
        self.stats.add("crash.lost_unaccepted", on_the_wire);
        self.out.clear();
    }

    /// WPQ occupancy of channel `ch` (accepted entries).
    pub fn wpq_len(&self, ch: u32) -> usize {
        self.channels[ch as usize].wpq.len()
    }

    /// Unaccepted arrivals queued at channel `ch`.
    pub fn pending_len(&self, ch: u32) -> usize {
        self.channels[ch as usize].pending.len()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> u32 {
        self.channels.len() as u32
    }

    /// Statistics accumulated by the memory system.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// High-water mark of the store-forward node slab across channels.
    /// The slab only grows (freed nodes go to a freelist), so its length
    /// *is* the high-water mark of concurrently live ops per channel.
    pub fn fwd_slab_hwm(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.fwd_nodes.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Sparse-tail full scans performed by the channel event calendar
    /// (see [`EventQueue::full_scans`]).
    pub fn calendar_full_scans(&self) -> u64 {
        self.events.full_scans()
    }

    /// Counts DRAM traffic for a dirty non-PM writeback (fire-and-forget:
    /// DRAM writes are not persist operations and skip the WPQ).
    pub fn dram_writeback(&mut self, image: &mut MemoryImage, line: LineAddr, data: &[u8; 64]) {
        image.write_line(line, data);
        self.stats.bump("dram.write.writeback");
    }
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("channels", &self.channels.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pmem::PM_BASE;
    use asap_sim::SystemConfig;

    fn pm_line(i: u64) -> LineAddr {
        LineAddr(PM_BASE / 64 + i)
    }

    /// Small config with the hop pinned to 16 cycles and eager draining so
    /// the exact-time assertions below stay readable.
    fn test_cfg() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.mem.mc_hop_latency = 16;
        c.mem.wpq_residency = 0;
        c
    }

    fn setup() -> (MemSystem, MemoryImage) {
        (MemSystem::new(&test_cfg()), MemoryImage::new())
    }

    fn dpo(line: LineAddr, byte: u8, rid: Option<Rid>) -> PersistOp {
        PersistOp::new(PersistKind::Dpo, line, [byte; 64], rid)
    }

    #[test]
    fn accept_then_write_reaches_image() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(0), 5, None), Cycle(0));
        mem.advance_to(Cycle(100_000), &mut image);
        let mut accepted = 0;
        let mut written = 0;
        while let Some(e) = mem.pop_event() {
            match e {
                MemEvent::Accepted { at, ack_at, .. } => {
                    accepted += 1;
                    assert_eq!(at, Cycle(16)); // one hop
                    assert_eq!(ack_at, Cycle(32));
                }
                MemEvent::PmWritten { at, .. } => {
                    written += 1;
                    assert_eq!(at, Cycle(16 + 12)); // + write service
                }
            }
        }
        assert_eq!((accepted, written), (1, 1));
        assert_eq!(image.read_line(pm_line(0))[0], 5);
        assert!(mem.is_idle());
    }

    #[test]
    fn wpq_backpressure_queues_arrivals() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 2;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..5 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        // Advance just past arrival: only 2 accepted, 3 pending.
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(mem.wpq_len(0), 2);
        assert_eq!(mem.pending_len(0), 3);
        // Full drain accepts and writes everything.
        mem.advance_to(Cycle(100_000), &mut image);
        assert_eq!(mem.wpq_len(0), 0);
        assert_eq!(mem.stats().get("pm.write.total"), 5);
        assert_eq!(mem.stats().get("mem.wpq.full_arrival"), 3);
    }

    #[test]
    fn drain_is_bandwidth_limited() {
        let mut cfg = test_cfg();
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..4 {
            mem.submit(dpo(pm_line(i), 0, None), Cycle(0));
        }
        mem.advance_to(Cycle(1_000_000), &mut image);
        let mut last_write = Cycle::ZERO;
        let mut writes = Vec::new();
        while let Some(e) = mem.pop_event() {
            if let MemEvent::PmWritten { at, .. } = e {
                writes.push(at);
                last_write = at;
            }
        }
        assert_eq!(writes.len(), 4);
        // Serial service: 16 (hop) + 12*k.
        assert_eq!(last_write, Cycle(16 + 12 * 4));
    }

    #[test]
    fn pm_latency_multiplier_slows_service() {
        let cfg = test_cfg().with_pm_latency_mult(4);
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 0, None), Cycle(0));
        mem.advance_to(Cycle(1_000_000), &mut image);
        let mut written_at = None;
        while let Some(e) = mem.pop_event() {
            if let MemEvent::PmWritten { at, .. } = e {
                written_at = Some(at);
            }
        }
        assert_eq!(written_at, Some(Cycle(16 + 48)));
        assert_eq!(mem.read_latency(pm_line(0)), 16 + 600);
        assert_eq!(mem.read_latency(LineAddr(0)), 16 + 150); // DRAM side
    }

    #[test]
    fn read_forwards_from_wpq() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(8), &[1u8; 64]);
        mem.submit(dpo(pm_line(8), 2, None), Cycle(0));
        mem.advance_to(Cycle(17), &mut image); // accepted, not yet written
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(data[0], 2);
        assert_eq!(mem.stats().get("mem.read.forwarded"), 1);
    }

    #[test]
    fn read_forwards_newest_entry() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(4), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(4), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // first accepted, second pending
        let (data, _) = mem.read_for_fill(pm_line(4), &image);
        assert_eq!(data[0], 2, "must forward the newest (pending) write");
    }

    #[test]
    fn read_forwards_from_ops_still_on_the_wire() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(8), &[1u8; 64]);
        mem.submit(dpo(pm_line(8), 3, None), Cycle(0));
        // Do NOT advance: the op has not even arrived at its controller.
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(
            data[0], 3,
            "a just-evicted line must read its own writeback"
        );
    }

    #[test]
    fn forwarding_stops_once_the_write_reaches_media() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(8), 4, None), Cycle(0));
        mem.advance_to(Cycle(100_000), &mut image); // accepted and drained
        let (data, _) = mem.read_for_fill(pm_line(8), &image);
        assert_eq!(data[0], 4, "data now comes from the image");
        assert_eq!(
            mem.stats().get("mem.read.forwarded"),
            0,
            "a drained op must leave the store-forward index"
        );
    }

    #[test]
    fn dropped_op_is_not_forwarded() {
        let (mut mem, mut image) = setup();
        let r1 = Rid::new(0, 1);
        let r2 = Rid::new(0, 2);
        image.write_line(pm_line(0), &[9u8; 64]);
        // Sacrificial op occupies the write engine so the next one stays
        // droppable in the WPQ.
        mem.submit(dpo(pm_line(4), 0, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 1, Some(r1)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(mem.drop_pending_dpo(pm_line(0), r2), 1);
        let (data, _) = mem.read_for_fill(pm_line(0), &image);
        assert_eq!(data[0], 9, "dropped write must not forward; image wins");
        assert_eq!(mem.stats().get("mem.read.forwarded"), 0);
    }

    #[test]
    fn crash_flush_clears_the_forward_index() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(1), 2, None), Cycle(0)); // stays pending
        mem.advance_to(Cycle(16), &mut image);
        mem.flush_to_image(&mut image);
        // Neither the flushed op (now in the image) nor the lost pending
        // op may forward after the crash.
        let (a, _) = mem.read_for_fill(pm_line(0), &image);
        let (b, _) = mem.read_for_fill(pm_line(1), &image);
        assert_eq!((a[0], b[0]), (1, 0));
        assert_eq!(mem.stats().get("mem.read.forwarded"), 0);
    }

    #[test]
    fn read_falls_back_to_image() {
        let (mut mem, mut image) = setup();
        image.write_line(pm_line(3), &[9u8; 64]);
        image.mark_persistent(pm_line(3).base(), 64);
        let (data, pbit) = mem.read_for_fill(pm_line(3), &image);
        assert_eq!(data[0], 9);
        assert!(pbit);
    }

    #[test]
    fn lpo_dropping_removes_region_log_writes() {
        let (mut mem, mut image) = setup();
        let rid = Rid::new(0, 1);
        let nch = mem.num_channels() as u64;
        // All ops on one channel; the first occupies the write engine so
        // the rest stay droppable in the WPQ.
        mem.submit(dpo(pm_line(0), 0, None), Cycle(0));
        let mut lpo = PersistOp::new(PersistKind::Lpo, pm_line(nch), [1; 64], Some(rid));
        lpo.logged_data_line = Some(pm_line(9));
        mem.submit(lpo, Cycle(0));
        mem.submit(
            PersistOp::new(PersistKind::LogHeader, pm_line(2 * nch), [2; 64], Some(rid)),
            Cycle(0),
        );
        mem.submit(dpo(pm_line(3 * nch), 3, Some(rid)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // all accepted, first in flight
        while mem.pop_event().is_some() {}
        let dropped = mem.drop_log_writes_of(rid);
        assert_eq!(dropped, 2, "both log writes dropped");
        mem.advance_to(Cycle(100_000), &mut image);
        let log_writes = mem.stats().get("pm.write.lpo") + mem.stats().get("pm.write.log_header");
        assert_eq!(log_writes, 0);
        assert_eq!(mem.stats().get("pm.write.dpo"), 2); // DPOs untouched
    }

    #[test]
    fn dpo_dropping_matches_line_and_skips_own_region() {
        let (mut mem, mut image) = setup();
        let r1 = Rid::new(0, 1);
        let r2 = Rid::new(0, 2);
        // Occupy the write engine with an unrelated sacrificial op so the
        // DPO of interest stays droppable (not in flight).
        mem.submit(dpo(pm_line(4), 0, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 1, Some(r1)), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        assert_eq!(
            mem.drop_pending_dpo(pm_line(0), r1),
            0,
            "own region's DPO kept"
        );
        assert_eq!(mem.drop_pending_dpo(pm_line(8), r2), 0, "other line kept");
        assert_eq!(
            mem.drop_pending_dpo(pm_line(0), r2),
            1,
            "earlier region's DPO dropped"
        );
        mem.advance_to(Cycle(100_000), &mut image);
        assert_eq!(mem.stats().get("pm.write.dpo"), 1); // only sacrificial one
        assert_eq!(mem.stats().get("pm.drop.dpo"), 1);
    }

    #[test]
    fn crash_flush_applies_accepted_discards_pending() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(1), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image); // first accepted, second pending
        mem.flush_to_image(&mut image);
        assert_eq!(
            image.read_line(pm_line(0))[0],
            1,
            "accepted entry flushed (ADR)"
        );
        assert_eq!(image.read_line(pm_line(1))[0], 0, "unaccepted entry lost");
        assert_eq!(mem.stats().get("crash.flushed"), 1);
        assert_eq!(mem.stats().get("crash.lost_unaccepted"), 1);
        assert!(mem.is_idle());
    }

    #[test]
    fn same_line_writes_apply_in_order_on_flush() {
        let (mut mem, mut image) = setup();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 2, None), Cycle(0));
        mem.advance_to(Cycle(16), &mut image);
        mem.flush_to_image(&mut image);
        assert_eq!(image.read_line(pm_line(0))[0], 2, "newest write wins");
    }

    #[test]
    fn channel_interleaving_by_line() {
        let (mem, _) = setup();
        let n = mem.num_channels() as u64;
        assert!(n >= 2);
        assert_ne!(mem.channel_of(LineAddr(0)), mem.channel_of(LineAddr(1)));
        assert_eq!(mem.channel_of(LineAddr(0)), mem.channel_of(LineAddr(n)));
    }

    #[test]
    fn lazy_drain_waits_for_residency() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 500;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        // Long after acceptance but before residency expiry: still queued.
        mem.advance_to(Cycle(400), &mut image);
        assert_eq!(mem.stats().get("pm.write.total"), 0, "write rests in WPQ");
        assert_eq!(mem.wpq_len(mem.channel_of(pm_line(0))), 1);
        // After expiry it drains.
        mem.advance_to(Cycle(10_000), &mut image);
        assert_eq!(mem.stats().get("pm.write.total"), 1);
        assert_eq!(image.read_line(pm_line(0))[0], 1);
    }

    #[test]
    fn lazy_drain_gives_drops_a_window() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 1000;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        let rid = Rid::new(0, 1);
        mem.submit(
            PersistOp::new(PersistKind::Lpo, pm_line(0), [1; 64], Some(rid)),
            Cycle(0),
        );
        mem.advance_to(Cycle(200), &mut image); // accepted, resting
        assert_eq!(mem.drop_log_writes_of(rid), 1, "droppable while resting");
        mem.advance_to(Cycle(10_000), &mut image);
        assert_eq!(
            mem.stats().get("pm.write.total"),
            0,
            "dropped, never written"
        );
    }

    #[test]
    fn watermark_overrides_residency() {
        let mut cfg = test_cfg();
        cfg.mem.wpq_residency = 100_000;
        cfg.mem.wpq_drain_watermark = 2;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        for i in 0..4 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        // Occupancy (4) exceeds the watermark (2): drains without waiting
        // out the residency.
        mem.advance_to(Cycle(5_000), &mut image);
        assert!(mem.stats().get("pm.write.total") >= 2);
    }

    #[test]
    fn dram_writeback_is_immediate() {
        let (mut mem, mut image) = setup();
        mem.dram_writeback(&mut image, LineAddr(5), &[3u8; 64]);
        assert_eq!(image.read_line(LineAddr(5))[0], 3);
        assert_eq!(mem.stats().get("dram.write.writeback"), 1);
        assert_eq!(mem.stats().get("pm.write.total"), 0);
    }

    #[test]
    fn fwd_slab_reuses_nodes_after_drain() {
        let mut cfg = test_cfg();
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        // Warm up: a burst of ops grows the node slab, then drains fully.
        for round in 0..3u64 {
            for i in 0..8 {
                mem.submit(dpo(pm_line(i), round as u8, None), Cycle(round * 10_000));
            }
            mem.advance_to(Cycle((round + 1) * 10_000 - 1), &mut image);
        }
        let ch = &mem.channels[0];
        assert!(ch.by_line.is_empty(), "all ops drained");
        let arena = ch.fwd_nodes.len();
        assert_eq!(ch.fwd_free.len(), arena, "every node back on the freelist");
        // Steady state: the same traffic shape must not grow the arena.
        for i in 0..8 {
            mem.submit(dpo(pm_line(i), 9, None), Cycle(40_000));
        }
        mem.advance_to(Cycle(50_000), &mut image);
        let ch = &mem.channels[0];
        assert_eq!(ch.fwd_nodes.len(), arena, "nodes recycled, none allocated");
        assert_eq!(ch.fwd_free.len(), arena);
    }

    #[test]
    fn fwd_slab_resets_on_crash_flush() {
        let (mut mem, mut image) = setup();
        for i in 0..6 {
            mem.submit(dpo(pm_line(i), i as u8, None), Cycle(0));
        }
        mem.advance_to(Cycle(20), &mut image); // some accepted, none drained
        mem.flush_to_image(&mut image);
        for ch in &mem.channels {
            assert!(ch.by_line.is_empty(), "index emptied by crash flush");
            assert!(ch.fwd_nodes.is_empty());
            assert!(ch.fwd_free.is_empty());
        }
        // Post-recovery traffic rebuilds the index from scratch.
        mem.submit(dpo(pm_line(0), 7, None), Cycle(100));
        let (data, _) = mem.read_for_fill(pm_line(0), &image);
        assert_eq!(data[0], 7);
    }

    #[test]
    fn fwd_list_removal_handles_middle_and_tail() {
        // Three live ops on one line (wpq_entries=1 keeps two pending), then
        // drain them one at a time: unindex removes head, middle, and tail
        // positions while read_for_fill keeps seeing the newest write.
        let mut cfg = test_cfg();
        cfg.mem.wpq_entries = 1;
        cfg.mem.controllers = 1;
        cfg.mem.channels_per_mc = 1;
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        mem.submit(dpo(pm_line(0), 1, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 2, None), Cycle(0));
        mem.submit(dpo(pm_line(0), 3, None), Cycle(0));
        for _ in 0..3 {
            let (data, _) = mem.read_for_fill(pm_line(0), &image);
            assert_eq!(data[0], 3, "newest live write forwards");
            let before = mem.stats().get("pm.write.total");
            let mut t = 16;
            while mem.stats().get("pm.write.total") == before {
                t += 1;
                mem.advance_to(Cycle(t), &mut image);
                assert!(t < 1_000_000, "drain must make progress");
            }
        }
        assert!(mem.channels[0].by_line.is_empty());
        assert_eq!(image.read_line(pm_line(0))[0], 3, "newest wins on media");
    }
}
