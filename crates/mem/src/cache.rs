//! Inclusive three-level cache hierarchy with real line data.
//!
//! The model keeps one *data store* for all cached lines (they are coherent
//! by construction, standing in for an invalidation-based protocol that
//! ASAP leaves unmodified) plus per-level LRU tag arrays used for timing:
//! per-core L1 and L2, and a shared LLC. The hierarchy is inclusive — a
//! line evicted from the LLC is back-invalidated from every L1/L2.
//!
//! ASAP-specific behaviour modelled here:
//!
//! - every line carries the tag extensions (`PBit`, `LockBit`, `OwnerRID`);
//! - victim selection skips lines whose `LockBit` is set (their first-write
//!   LPO has not completed, §4.6.1); if a set is entirely locked the forced
//!   eviction is reported so the caller can stall for the LPO.

use asap_pmem::{AddrMap, LineAddr};
use asap_sim::{CacheConfig, SystemConfig};

use crate::line::{LineState, LINE_SIZE};

/// Where an access hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Own L1.
    L1,
    /// Own L2.
    L2,
    /// Shared LLC (no private copy elsewhere).
    Llc,
    /// Another core's private cache (snoop forward).
    Remote,
    /// Missed the whole hierarchy.
    Memory,
}

/// A line pushed out of the LLC (and back-invalidated everywhere).
#[derive(Clone, Debug)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its full state at eviction (data, dirty, tag extensions).
    pub state: LineState,
    /// True if every candidate way was locked and an LPO-locked line had
    /// to be chosen anyway; the caller must wait for that LPO first.
    pub forced: bool,
}

/// The outcome of one access.
#[derive(Clone, Debug)]
pub struct Access {
    /// Cycles the access costs the issuing thread.
    pub latency: u64,
    /// Where the line was found.
    pub level: HitLevel,
    /// LLC evictions triggered by the fill (at most one).
    pub evicted: Vec<Evicted>,
}

/// Extra cycles a store-miss write-allocate costs beyond the LLC lookup
/// (the fill itself overlaps with subsequent execution).
const STORE_MISS_ALLOC: u64 = 30;

/// Load or store — stores retire through the store buffer and pay the
/// bandwidth of the level that owns the line; loads pay the full hierarchy
/// latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load: pays the latency of the level it hits.
    Load,
    /// A store: write-allocates but is charged store-buffer cost only.
    Store,
}

/// One way of a set: the cached line and its LRU stamp.
#[derive(Clone, Copy, Debug)]
struct Way {
    line: LineAddr,
    last_used: u64,
}

/// A set-associative LRU tag array (timing only — data lives in the store).
///
/// Each set carries a *way hint*: the address of its most-recently-used
/// line. Repeated accesses to the same line — by far the common case on the
/// simulator's hot path — then resolve `contains`/`touch` with one compare
/// instead of a way scan. Skipping the re-stamp of an already-MRU line is
/// sound: it cannot change the relative `last_used` order, which is all
/// LRU victim selection looks at.
#[derive(Clone, Debug)]
struct TagArray {
    sets: Vec<Vec<Way>>,
    /// Per-set MRU line (the way hint); `None` when unknown.
    mru: Vec<Option<LineAddr>>,
    ways: usize,
    tick: u64,
}

impl TagArray {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        TagArray {
            sets: vec![Vec::new(); sets],
            mru: vec![None; sets],
            ways: cfg.ways as usize,
            tick: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        if self.mru[set] == Some(line) {
            return true;
        }
        self.sets[set].iter().any(|w| w.line == line)
    }

    fn touch(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if self.mru[set] == Some(line) {
            // Already the newest stamp in its set; re-stamping preserves
            // the relative order, so skip it.
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.last_used = tick;
            self.mru[set] = Some(line);
        }
    }

    fn remove(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if self.mru[set] == Some(line) {
            self.mru[set] = None;
        }
        self.sets[set].retain(|w| w.line != line);
    }

    /// Inserts `line`; if the set is full, evicts and returns the victim
    /// preferring unlocked lines (per `evictable`). The bool is true when a
    /// locked line had to be forced out.
    fn insert<F>(&mut self, line: LineAddr, evictable: F) -> Option<(LineAddr, bool)>
    where
        F: Fn(LineAddr) -> bool,
    {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        debug_assert!(!set.iter().any(|w| w.line == line), "double insert");
        let mut victim = None;
        if set.len() >= self.ways {
            // LRU among evictable ways; fall back to overall LRU if all
            // ways are locked.
            let pick = set
                .iter()
                .enumerate()
                .filter(|(_, w)| evictable(w.line))
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| (i, false))
                .or_else(|| {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.last_used)
                        .map(|(i, _)| (i, true))
                });
            if let Some((i, forced)) = pick {
                victim = Some((set.remove(i).line, forced));
            }
        }
        set.push(Way {
            line,
            last_used: tick,
        });
        // The inserted line carries the newest stamp in the set; this also
        // retires any hint pointing at the victim.
        self.mru[set_idx] = Some(line);
        victim
    }

    fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flatten().map(|w| w.line)
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.mru.fill(None);
    }
}

/// Running eviction counters kept by the hierarchy (folded into run stats
/// as `machine.evict.*` by the owning core model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionCounts {
    /// LLC evictions of any kind.
    pub total: u64,
    /// Evictions that had to force out an LPO-locked line.
    pub forced: u64,
    /// Evictions of dirty lines (caused a writeback).
    pub dirty: u64,
}

/// The full cache hierarchy: shared data store plus per-level tag arrays.
pub struct CacheHierarchy {
    /// Shared data store for every cached line. Deterministic fast hasher:
    /// looked up several times per simulated memory access, never iterated
    /// in an order-sensitive way (see [`asap_pmem::hash`]).
    store: AddrMap<LineAddr, LineState>,
    l1: Vec<TagArray>,
    l2: Vec<TagArray>,
    llc: TagArray,
    l1_lat: u64,
    l2_lat: u64,
    llc_lat: u64,
    remote_lat: u64,
    store_cost: u64,
    evictions: EvictionCounts,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores per `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let cores = cfg.cores as usize;
        CacheHierarchy {
            store: AddrMap::default(),
            l1: (0..cores).map(|_| TagArray::new(&cfg.l1)).collect(),
            l2: (0..cores).map(|_| TagArray::new(&cfg.l2)).collect(),
            llc: TagArray::new(&cfg.llc),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            llc_lat: cfg.llc.latency,
            remote_lat: cfg.llc.latency + 18,
            store_cost: cfg.store_cost,
            evictions: EvictionCounts::default(),
        }
    }

    /// Eviction counters since construction.
    pub fn eviction_counts(&self) -> EvictionCounts {
        self.evictions
    }

    /// Number of cores the hierarchy was built for.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Where would an access by `core` to `line` hit right now?
    pub fn peek_level(&self, core: usize, line: LineAddr) -> HitLevel {
        if self.l1[core].contains(line) {
            HitLevel::L1
        } else if self.l2[core].contains(line) {
            HitLevel::L2
        } else if self.llc.contains(line) {
            let remote = (0..self.l1.len())
                .any(|c| c != core && (self.l1[c].contains(line) || self.l2[c].contains(line)));
            if remote {
                HitLevel::Remote
            } else {
                HitLevel::Llc
            }
        } else {
            HitLevel::Memory
        }
    }

    /// Performs an access by `core` to `line`.
    ///
    /// On a miss the caller must supply `fill`: the line data (from the
    /// memory system, with WPQ forwarding) and its persistent bit.
    /// `miss_latency` is the additional memory latency beyond the LLC
    /// lookup, also supplied by the caller (it depends on DRAM vs PM).
    ///
    /// For [`AccessKind::Store`] the data is *not* modified here — the
    /// caller mutates the line via [`line_mut`](Self::line_mut) afterwards
    /// (and sets dirty/owner bits per its scheme).
    ///
    /// # Panics
    ///
    /// Panics if the access misses and `fill` is `None`.
    pub fn access(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        fill: Option<([u8; LINE_SIZE], bool)>,
        miss_latency: u64,
    ) -> Access {
        let level = self.peek_level(core, line);
        let mut evicted = Vec::new();
        if level == HitLevel::Memory {
            let (data, pbit) = fill.expect("miss requires fill data");
            let mut st = LineState::from_bytes(data);
            st.pbit = pbit;
            self.store.insert(line, st);
            let store = &self.store;
            if let Some((victim, forced)) = self
                .llc
                .insert(line, |l| store.get(&l).is_none_or(|s| s.evictable()))
            {
                let state = self.store.remove(&victim).expect("victim must be in store");
                for c in 0..self.l1.len() {
                    self.l1[c].remove(victim);
                    self.l2[c].remove(victim);
                }
                self.evictions.total += 1;
                if forced {
                    self.evictions.forced += 1;
                }
                if state.dirty {
                    self.evictions.dirty += 1;
                }
                evicted.push(Evicted {
                    line: victim,
                    state,
                    forced,
                });
            }
        }
        // Promote into the private levels (tag-only; no writeback needed
        // since data lives in the shared store).
        if !self.l1[core].contains(line) {
            self.l1[core].insert(line, |_| true);
        }
        if !self.l2[core].contains(line) {
            self.l2[core].insert(line, |_| true);
        }
        self.l1[core].touch(line);
        self.l2[core].touch(line);
        self.llc.touch(line);
        if kind == AccessKind::Store {
            // Write-invalidate other cores' private copies.
            for c in 0..self.l1.len() {
                if c != core {
                    self.l1[c].remove(line);
                    self.l2[c].remove(line);
                }
            }
        }
        let latency = match kind {
            // Stores retire through the store buffer: they do not wait for
            // the full memory round trip, but sustained streams are bound
            // by the bandwidth of the level that owns the line — charge
            // that level's latency, capping misses at LLC + an allocation
            // penalty (the fill overlaps with later work).
            AccessKind::Store => {
                self.store_cost
                    + match level {
                        HitLevel::L1 => self.l1_lat,
                        HitLevel::L2 => self.l2_lat,
                        HitLevel::Llc => self.llc_lat,
                        HitLevel::Remote => self.remote_lat,
                        HitLevel::Memory => self.llc_lat + STORE_MISS_ALLOC,
                    }
            }
            AccessKind::Load => match level {
                HitLevel::L1 => self.l1_lat,
                HitLevel::L2 => self.l2_lat,
                HitLevel::Llc => self.llc_lat,
                HitLevel::Remote => self.remote_lat,
                HitLevel::Memory => self.llc_lat + miss_latency,
            },
        };
        Access {
            latency,
            level,
            evicted,
        }
    }

    /// Read access to a cached line's state.
    pub fn line(&self, line: LineAddr) -> Option<&LineState> {
        self.store.get(&line)
    }

    /// Mutable access to a cached line's state (data, dirty, tag bits).
    pub fn line_mut(&mut self, line: LineAddr) -> Option<&mut LineState> {
        self.store.get_mut(&line)
    }

    /// Whether `line` is present anywhere in the hierarchy.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.store.contains_key(&line)
    }

    /// Copies a line's current data out and clears its dirty bit, leaving
    /// the line cached (the effect of `clwb` or a hardware DPO snapshot).
    pub fn writeback_copy(&mut self, line: LineAddr) -> Option<[u8; LINE_SIZE]> {
        self.store.get_mut(&line).map(|s| {
            s.dirty = false;
            s.data
        })
    }

    /// Discards every cached line without writeback — a power failure.
    pub fn invalidate_all(&mut self) {
        self.store.clear();
        for t in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            t.clear();
        }
        self.llc.clear();
    }

    /// Iterates over all cached lines and their states.
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, &LineState)> {
        self.store.iter().map(|(&l, s)| (l, s))
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Number of cached lines whose dirty bit is set — the telemetry
    /// sampler's dirty-line gauge. O(resident lines); the sampler's
    /// decimating buffer bounds how often this walk runs.
    pub fn dirty_lines(&self) -> u64 {
        self.store.values().filter(|s| s.dirty).count() as u64
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Consistency check: every tag-array line must be in the data store
    /// and every L1/L2 line must also be in the LLC (inclusivity).
    pub fn check_inclusive(&self) -> bool {
        let llc_ok = self.llc.lines().all(|l| self.store.contains_key(&l));
        let priv_ok = self
            .l1
            .iter()
            .chain(self.l2.iter())
            .flat_map(|t| t.lines())
            .all(|l| self.llc.contains(l));
        let store_ok = self.store.keys().all(|&l| self.llc.contains(l));
        llc_ok && priv_ok && store_ok
    }
}

impl std::fmt::Debug for CacheHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHierarchy")
            .field("cores", &self.l1.len())
            .field("cached_lines", &self.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid::Rid;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SystemConfig::small())
    }

    fn fill() -> Option<([u8; LINE_SIZE], bool)> {
        Some(([7u8; LINE_SIZE], true))
    }

    #[test]
    fn miss_then_hits_climb_levels() {
        let mut h = hierarchy();
        let a = h.access(0, LineAddr(1), AccessKind::Load, fill(), 150);
        assert_eq!(a.level, HitLevel::Memory);
        assert_eq!(a.latency, 42 + 150);
        let a = h.access(0, LineAddr(1), AccessKind::Load, None, 150);
        assert_eq!(a.level, HitLevel::L1);
        assert_eq!(a.latency, 4);
    }

    #[test]
    fn fill_sets_pbit_from_page_table() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, Some(([0; 64], true)), 0);
        assert!(h.line(LineAddr(1)).unwrap().pbit);
        h.access(0, LineAddr(2), AccessKind::Load, Some(([0; 64], false)), 0);
        assert!(!h.line(LineAddr(2)).unwrap().pbit);
    }

    #[test]
    fn remote_hit_detected() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        let a = h.access(1, LineAddr(1), AccessKind::Load, None, 0);
        assert_eq!(a.level, HitLevel::Remote);
    }

    #[test]
    fn store_invalidates_other_cores_private_copies() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        h.access(1, LineAddr(1), AccessKind::Load, None, 0);
        // Core 1 writes: core 0's private copy must go away.
        h.access(1, LineAddr(1), AccessKind::Store, None, 0);
        let a = h.access(0, LineAddr(1), AccessKind::Load, None, 0);
        assert_eq!(a.level, HitLevel::Remote); // refetched via LLC/snoop
    }

    #[test]
    fn store_latency_tracks_owning_level() {
        let mut h = hierarchy();
        // Miss: capped at LLC + allocation penalty, far below a full
        // memory round trip.
        let a = h.access(0, LineAddr(9), AccessKind::Store, fill(), 500);
        assert_eq!(a.latency, 1 + 42 + 30);
        assert_eq!(a.level, HitLevel::Memory);
        // L1 hit: store-buffer cost only.
        let a = h.access(0, LineAddr(9), AccessKind::Store, None, 500);
        assert_eq!(a.latency, 1 + 4);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn eviction_counts_track_kinds() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        assert_eq!(h.eviction_counts(), EvictionCounts::default());
        let llc_lines = cfg.llc.size_bytes / 64;
        for i in 0..llc_lines + 64 {
            h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
        }
        let c = h.eviction_counts();
        assert!(c.total >= 64);
        assert_eq!(c.forced, 0);
        assert_eq!(c.dirty, 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_and_reports() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let llc_lines = cfg.llc.size_bytes / 64;
        // Touch one more distinct set-colliding line than the LLC holds.
        let mut evicted = 0;
        for i in 0..llc_lines + 64 {
            let a = h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
            evicted += a.evicted.len();
            for e in &a.evicted {
                assert!(!h.contains(e.line));
            }
        }
        assert!(evicted >= 64);
        assert!(h.check_inclusive());
    }

    #[test]
    fn locked_lines_avoid_eviction() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        // Fill one LLC set completely, locking the LRU (first) line.
        let set_stride = sets;
        for i in 0..ways {
            h.access(0, LineAddr(i * set_stride), AccessKind::Load, fill(), 0);
        }
        h.line_mut(LineAddr(0)).unwrap().lock_bit = true;
        // Next fill in the same set must evict line at stride*1, not 0.
        let a = h.access(0, LineAddr(ways * set_stride), AccessKind::Load, fill(), 0);
        assert_eq!(a.evicted.len(), 1);
        assert_eq!(a.evicted[0].line, LineAddr(set_stride));
        assert!(!a.evicted[0].forced);
        assert!(h.contains(LineAddr(0)));
    }

    #[test]
    fn fully_locked_set_forces_eviction() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        for i in 0..ways {
            h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
            h.line_mut(LineAddr(i * sets)).unwrap().lock_bit = true;
        }
        let a = h.access(0, LineAddr(ways * sets), AccessKind::Load, fill(), 0);
        assert_eq!(a.evicted.len(), 1);
        assert!(a.evicted[0].forced);
    }

    #[test]
    fn writeback_copy_clears_dirty_keeps_line() {
        let mut h = hierarchy();
        h.access(0, LineAddr(3), AccessKind::Store, fill(), 0);
        let l = h.line_mut(LineAddr(3)).unwrap();
        l.dirty = true;
        l.data[0] = 0xaa;
        let data = h.writeback_copy(LineAddr(3)).unwrap();
        assert_eq!(data[0], 0xaa);
        assert!(!h.line(LineAddr(3)).unwrap().dirty);
        assert!(h.contains(LineAddr(3)));
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        h.access(1, LineAddr(2), AccessKind::Load, fill(), 0);
        h.invalidate_all();
        assert!(h.is_empty());
        assert_eq!(h.peek_level(0, LineAddr(1)), HitLevel::Memory);
        assert!(h.check_inclusive());
    }

    #[test]
    fn owner_rid_travels_with_line_state() {
        let mut h = hierarchy();
        h.access(0, LineAddr(5), AccessKind::Store, fill(), 0);
        h.line_mut(LineAddr(5)).unwrap().owner = Some(Rid::new(0, 1));
        assert!(h
            .line(LineAddr(5))
            .unwrap()
            .is_owned_by_other(Rid::new(1, 1)));
    }

    #[test]
    fn eviction_preserves_line_state() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        h.access(0, LineAddr(0), AccessKind::Store, fill(), 0);
        {
            let l = h.line_mut(LineAddr(0)).unwrap();
            l.dirty = true;
            l.owner = Some(Rid::new(0, 7));
            l.data[10] = 0x42;
        }
        let mut got = None;
        for i in 1..=ways {
            let a = h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
            for e in a.evicted {
                if e.line == LineAddr(0) {
                    got = Some(e);
                }
            }
        }
        let e = got.expect("line 0 should have been evicted");
        assert!(e.state.dirty);
        assert_eq!(e.state.owner, Some(Rid::new(0, 7)));
        assert_eq!(e.state.data[10], 0x42);
    }

    #[test]
    fn way_hint_tracks_presence_under_churn() {
        let cfg = SystemConfig::small();
        let mut t = TagArray::new(&cfg.l1);
        t.insert(LineAddr(0), |_| true);
        assert!(t.contains(LineAddr(0)));
        t.touch(LineAddr(0)); // MRU fast path
        t.remove(LineAddr(0));
        assert!(!t.contains(LineAddr(0)), "hint must die with the line");
        t.touch(LineAddr(0)); // absent: must not resurrect the hint
        assert!(!t.contains(LineAddr(0)));
        t.clear();
        t.insert(LineAddr(0), |_| true);
        assert!(t.contains(LineAddr(0)));
    }

    #[test]
    fn way_hint_does_not_change_lru_order() {
        // Fill a set, re-touch the MRU line (fast path, no re-stamp), then
        // overflow: the victim must still be the true LRU line.
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        for i in 0..ways {
            h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
        }
        // Newest line is MRU; touching it repeatedly must not disturb the
        // order, and re-touching the oldest promotes it.
        for _ in 0..3 {
            h.access(0, LineAddr((ways - 1) * sets), AccessKind::Load, None, 0);
        }
        h.access(0, LineAddr(0), AccessKind::Load, None, 0);
        let a = h.access(0, LineAddr(ways * sets), AccessKind::Load, fill(), 0);
        assert_eq!(a.evicted.len(), 1);
        assert_eq!(a.evicted[0].line, LineAddr(sets), "true LRU is evicted");
    }

    #[test]
    fn inclusivity_invariant_holds_under_load() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..5000u64 {
            let core = (i % cfg.cores as u64) as usize;
            h.access(core, LineAddr(i * 3 % 2048), AccessKind::Load, fill(), 0);
        }
        assert!(h.check_inclusive());
    }
}
