//! Inclusive three-level cache hierarchy with real line data.
//!
//! The model keeps one *data store* for all cached lines (they are coherent
//! by construction, standing in for an invalidation-based protocol that
//! ASAP leaves unmodified) plus per-level LRU tag arrays used for timing:
//! per-core L1 and L2, and a shared LLC. The hierarchy is inclusive — a
//! line evicted from the LLC is back-invalidated from every L1/L2.
//!
//! ASAP-specific behaviour modelled here:
//!
//! - every line carries the tag extensions (`PBit`, `LockBit`, `OwnerRID`);
//! - victim selection skips lines whose `LockBit` is set (their first-write
//!   LPO has not completed, §4.6.1); if a set is entirely locked the forced
//!   eviction is reported so the caller can stall for the LPO.
//!
//! # Memory layout
//!
//! The structures are data-oriented for the simulator's per-access hot
//! path (see DESIGN.md §Memory layout & hot-path engineering):
//!
//! - line data lives in a *slab arena* ([`LineSlab`]) indexed by an
//!   open-addressed `LineAddr → slot` table (the PR 2 `PageIndex`
//!   pattern), with a one-entry last-lookup cache;
//! - every tag way carries its line's slab slot, so a cache hit resolves
//!   data with **zero** hash probes;
//! - each [`TagArray`] is one fixed-stride SoA allocation (`ways ≤ 16`
//!   inline per set) instead of `Vec<Vec<Way>>`;
//! - the slab tracks per-core private-cache presence masks, so remote-hit
//!   detection and store write-invalidation visit only the cores that
//!   actually hold a copy instead of scanning every core's tag sets.
//!
//! None of this may change behaviour: victim choice depends only on the
//! relative order of unique LRU stamps, and all scans iterate cores in
//! ascending order — exactly like the nested-`Vec` layout it replaced.

use std::cell::Cell;

use asap_pmem::LineAddr;
use asap_sim::{CacheConfig, SystemConfig};

use crate::line::{LineState, LINE_SIZE};

/// Where an access hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Own L1.
    L1,
    /// Own L2.
    L2,
    /// Shared LLC (no private copy elsewhere).
    Llc,
    /// Another core's private cache (snoop forward).
    Remote,
    /// Missed the whole hierarchy.
    Memory,
}

/// A line pushed out of the LLC (and back-invalidated everywhere).
#[derive(Clone, Debug)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its full state at eviction (data, dirty, tag extensions).
    pub state: LineState,
    /// True if every candidate way was locked and an LPO-locked line had
    /// to be chosen anyway; the caller must wait for that LPO first.
    pub forced: bool,
}

/// The outcome of one access.
#[derive(Clone, Debug)]
pub struct Access {
    /// Cycles the access costs the issuing thread.
    pub latency: u64,
    /// Where the line was found.
    pub level: HitLevel,
    /// The LLC eviction triggered by the fill, if any (at most one; held
    /// inline so the hit path never allocates).
    pub evicted: Option<Evicted>,
    /// The accessed line's page-table persistent bit, captured after the
    /// fill/hit — callers that already hold the `Access` can branch on it
    /// without a second line lookup.
    pub pbit: bool,
}

/// Extra cycles a store-miss write-allocate costs beyond the LLC lookup
/// (the fill itself overlaps with subsequent execution).
const STORE_MISS_ALLOC: u64 = 30;

/// Load or store — stores retire through the store buffer and pay the
/// bandwidth of the level that owns the line; loads pay the full hierarchy
/// latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load: pays the latency of the level it hits.
    Load,
    /// A store: write-allocates but is charged store-buffer cost only.
    Store,
}

/// Sentinel for "no line" in tag ways, slab keys and the MRU hints. Real
/// line addresses are physical addresses divided by 64, far below this.
const NO_LINE: LineAddr = LineAddr(u64::MAX);
/// Sentinel slab slot / way index.
const NO_SLOT: u32 = u32::MAX;

/// Open-addressed linear-probe `LineAddr → slab slot` map — the PR 2
/// `PageIndex` pattern: Fibonacci hashing, power-of-two capacity, grow at
/// 3/4 load. Unlike `PageIndex` it also supports removal (LLC evictions),
/// implemented as tombstone-free backward-shift deletion so probe chains
/// never degrade over a long run.
#[derive(Clone)]
struct LineIndex {
    /// Key per bucket; `u64::MAX` marks an empty bucket.
    keys: Vec<u64>,
    /// Slab slot per bucket (parallel to `keys`).
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY_KEY: u64 = u64::MAX;

impl LineIndex {
    fn new() -> Self {
        let cap = 256;
        LineIndex {
            keys: vec![EMPTY_KEY; cap],
            slots: vec![0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.slots[i]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.slots[i] = slot;
                self.len += 1;
                return;
            }
            debug_assert_ne!(k, key, "line already indexed");
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its slot. Backward-shift deletion: walk
    /// the probe chain after the hole and pull back every entry whose home
    /// bucket does not lie cyclically inside `(hole, entry]`.
    fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                break;
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        let slot = self.slots[i];
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY_KEY {
                break;
            }
            let home = self.bucket(k);
            let stays = if hole < j {
                hole < home && home <= j
            } else {
                hole < home || home <= j
            };
            if !stays {
                self.keys[hole] = k;
                self.slots[hole] = self.slots[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY_KEY;
        self.len -= 1;
        Some(slot)
    }

    fn grow(&mut self) {
        let cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; cap]);
        let old_slots = std::mem::take(&mut self.slots);
        self.slots = vec![0; cap];
        self.mask = cap - 1;
        self.len = 0;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if k != EMPTY_KEY {
                self.insert(k, s);
            }
        }
    }

    fn clear(&mut self) {
        self.keys.fill(EMPTY_KEY);
        self.len = 0;
    }
}

/// Slab arena holding every cached line's state.
///
/// Slots are recycled through a freelist, so steady-state traffic (insert
/// on fill, remove on eviction) performs no heap allocation once the
/// resident set has peaked. Alongside each line the slab keeps per-core
/// presence masks for the private levels as fixed-stride multi-word
/// bitmasks — bit `c % 64` of word `c / 64` in a slot's `l1_mask` stripe
/// is set iff core `c`'s L1 tag array holds the line. One word covers up
/// to 64 cores (`mask_words == 1`, the common case, keeps the single-word
/// fast paths); wider machines get `ceil(cores / 64)` words per slot.
#[derive(Clone)]
struct LineSlab {
    /// Line address per slot; [`NO_LINE`] marks a free slot.
    keys: Vec<LineAddr>,
    states: Vec<LineState>,
    /// Per-slot presence stripes (`mask_words` words each) of cores whose
    /// L1 holds the line.
    l1_mask: Vec<u64>,
    /// Per-slot presence stripes of cores whose L2 holds the line.
    l2_mask: Vec<u64>,
    /// Stripe width in words: `ceil(cores / 64)`, at least 1.
    mask_words: usize,
    free: Vec<u32>,
    index: LineIndex,
    len: usize,
    /// One-entry lookup cache `(line.0, slot)`: the hierarchy is queried
    /// several times per simulated access for the same line, and a single
    /// compare beats even the open-addressed probe.
    last: Cell<(u64, u32)>,
}

impl LineSlab {
    fn new(mask_words: usize) -> Self {
        LineSlab {
            keys: Vec::new(),
            states: Vec::new(),
            l1_mask: Vec::new(),
            l2_mask: Vec::new(),
            mask_words: mask_words.max(1),
            free: Vec::new(),
            index: LineIndex::new(),
            len: 0,
            last: Cell::new((EMPTY_KEY, 0)),
        }
    }

    /// First word of `slot`'s presence stripe.
    #[inline]
    fn mask_base(&self, slot: u32) -> usize {
        slot as usize * self.mask_words
    }

    /// Index of the word holding `core`'s bit in `slot`'s stripe. The
    /// one-word case skips the stride multiply — `core >> 6` is 0 there.
    #[inline]
    fn word_of(&self, slot: u32, core: usize) -> usize {
        if self.mask_words == 1 {
            slot as usize
        } else {
            self.mask_base(slot) + (core >> 6)
        }
    }

    #[inline]
    fn set_l1(&mut self, slot: u32, core: usize) {
        let i = self.word_of(slot, core);
        self.l1_mask[i] |= 1u64 << (core & 63);
    }

    #[inline]
    fn clear_l1(&mut self, slot: u32, core: usize) {
        let i = self.word_of(slot, core);
        self.l1_mask[i] &= !(1u64 << (core & 63));
    }

    #[inline]
    fn set_l2(&mut self, slot: u32, core: usize) {
        let i = self.word_of(slot, core);
        self.l2_mask[i] |= 1u64 << (core & 63);
    }

    #[inline]
    fn clear_l2(&mut self, slot: u32, core: usize) {
        let i = self.word_of(slot, core);
        self.l2_mask[i] &= !(1u64 << (core & 63));
    }

    #[inline]
    fn test_l1(&self, slot: u32, core: usize) -> bool {
        let i = self.word_of(slot, core);
        self.l1_mask[i] & (1u64 << (core & 63)) != 0
    }

    #[inline]
    fn test_l2(&self, slot: u32, core: usize) -> bool {
        let i = self.word_of(slot, core);
        self.l2_mask[i] & (1u64 << (core & 63)) != 0
    }

    /// Whether any core other than `core` holds the line privately.
    ///
    /// The one-word body stays inline at the call sites (the hot cache
    /// probe path); the wide loop is kept out-of-line so it does not eat
    /// the callers' inline budget — same for the other wide variants
    /// below.
    #[inline]
    fn private_elsewhere(&self, slot: u32, core: usize) -> bool {
        if self.mask_words == 1 {
            let m = self.l1_mask[slot as usize] | self.l2_mask[slot as usize];
            return m & !(1u64 << core) != 0;
        }
        self.private_elsewhere_wide(slot, core)
    }

    #[inline(never)]
    fn private_elsewhere_wide(&self, slot: u32, core: usize) -> bool {
        let b = self.mask_base(slot);
        for w in 0..self.mask_words {
            let mut m = self.l1_mask[b + w] | self.l2_mask[b + w];
            if w == core >> 6 {
                m &= !(1u64 << (core & 63));
            }
            if m != 0 {
                return true;
            }
        }
        false
    }

    /// Calls `f` for every core holding the line privately, excluding
    /// `except` if given — ascending core order (word-major, then bit
    /// order), like the full core scan the masks replace.
    #[inline]
    fn for_each_private(&self, slot: u32, except: Option<usize>, mut f: impl FnMut(usize)) {
        if self.mask_words == 1 {
            let mut m = self.l1_mask[slot as usize] | self.l2_mask[slot as usize];
            if let Some(c) = except {
                m &= !(1u64 << c);
            }
            while m != 0 {
                let c = m.trailing_zeros() as usize;
                m &= m - 1;
                f(c);
            }
            return;
        }
        let b = self.mask_base(slot);
        for w in 0..self.mask_words {
            let mut m = self.l1_mask[b + w] | self.l2_mask[b + w];
            if let Some(c) = except {
                if w == c >> 6 {
                    m &= !(1u64 << (c & 63));
                }
            }
            while m != 0 {
                let c = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                f(c);
            }
        }
    }

    /// Clears both presence stripes except (at most) `core`'s own bits.
    #[inline]
    fn retain_only(&mut self, slot: u32, core: usize) {
        if self.mask_words == 1 {
            self.l1_mask[slot as usize] &= 1u64 << core;
            self.l2_mask[slot as usize] &= 1u64 << core;
            return;
        }
        self.retain_only_wide(slot, core)
    }

    #[inline(never)]
    fn retain_only_wide(&mut self, slot: u32, core: usize) {
        let b = self.mask_base(slot);
        for w in 0..self.mask_words {
            let keep = if w == core >> 6 {
                1u64 << (core & 63)
            } else {
                0
            };
            self.l1_mask[b + w] &= keep;
            self.l2_mask[b + w] &= keep;
        }
    }

    /// Resolves a line address to its slot, if cached.
    #[inline]
    fn slot_of(&self, line: LineAddr) -> Option<u32> {
        let (lk, ls) = self.last.get();
        if lk == line.0 {
            return Some(ls);
        }
        let slot = self.index.get(line.0)?;
        self.last.set((line.0, slot));
        Some(slot)
    }

    #[inline]
    fn state(&self, slot: u32) -> &LineState {
        debug_assert_ne!(self.keys[slot as usize], NO_LINE, "stale slot");
        &self.states[slot as usize]
    }

    #[inline]
    fn state_mut(&mut self, slot: u32) -> &mut LineState {
        debug_assert_ne!(self.keys[slot as usize], NO_LINE, "stale slot");
        &mut self.states[slot as usize]
    }

    fn insert(&mut self, line: LineAddr, st: LineState) -> u32 {
        debug_assert_ne!(line, NO_LINE);
        let slot = match self.free.pop() {
            Some(s) => {
                self.keys[s as usize] = line;
                self.states[s as usize] = st;
                if self.mask_words == 1 {
                    self.l1_mask[s as usize] = 0;
                    self.l2_mask[s as usize] = 0;
                } else {
                    let b = s as usize * self.mask_words;
                    self.l1_mask[b..b + self.mask_words].fill(0);
                    self.l2_mask[b..b + self.mask_words].fill(0);
                }
                s
            }
            None => {
                let s = self.keys.len() as u32;
                self.keys.push(line);
                self.states.push(st);
                if self.mask_words == 1 {
                    self.l1_mask.push(0);
                    self.l2_mask.push(0);
                } else {
                    self.l1_mask.resize(self.l1_mask.len() + self.mask_words, 0);
                    self.l2_mask.resize(self.l2_mask.len() + self.mask_words, 0);
                }
                s
            }
        };
        self.index.insert(line.0, slot);
        self.last.set((line.0, slot));
        self.len += 1;
        slot
    }

    /// Frees `slot` (holding `line`), returning the line's final state.
    fn remove_slot(&mut self, line: LineAddr, slot: u32) -> LineState {
        debug_assert_eq!(self.keys[slot as usize], line, "slot/line mismatch");
        let removed = self.index.remove(line.0);
        debug_assert_eq!(removed, Some(slot));
        self.keys[slot as usize] = NO_LINE;
        self.free.push(slot);
        if self.last.get().0 == line.0 {
            self.last.set((EMPTY_KEY, 0));
        }
        self.len -= 1;
        self.states[slot as usize].clone()
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.states.clear();
        self.l1_mask.clear();
        self.l2_mask.clear();
        self.free.clear();
        self.index.clear();
        self.len = 0;
        self.last.set((EMPTY_KEY, 0));
    }

    fn iter(&self) -> impl Iterator<Item = (LineAddr, &LineState)> {
        self.keys
            .iter()
            .zip(&self.states)
            .filter(|(k, _)| **k != NO_LINE)
            .map(|(k, s)| (*k, s))
    }
}

/// A set-associative LRU tag array (timing only — data lives in the slab).
///
/// One flat SoA allocation with a fixed stride of `ways` entries per set;
/// an empty way holds [`NO_LINE`]. Each way also records its line's slab
/// slot, so tag hits hand the data location straight back.
///
/// Each set carries a *way hint*: the index of its most-recently-used
/// way. Repeated accesses to the same line — by far the common case on the
/// simulator's hot path — then resolve `lookup`/`touch` with one compare
/// instead of a way scan. Skipping the re-stamp of an already-MRU line is
/// sound: it cannot change the relative `last_used` order, which is all
/// LRU victim selection looks at. Every stamping operation draws a fresh
/// `tick`, so stamps are unique per array and the LRU minimum is unique —
/// victim choice cannot depend on scan order or physical layout.
#[derive(Clone, Debug)]
struct TagArray {
    /// `sets * ways` line addresses, stride `ways`; `NO_LINE` = empty way.
    lines: Vec<LineAddr>,
    /// Slab slot per way (parallel to `lines`).
    slots: Vec<u32>,
    /// LRU stamp per way (parallel to `lines`).
    stamps: Vec<u64>,
    /// Per-set MRU line (the way hint); `NO_LINE` when unknown.
    mru_line: Vec<LineAddr>,
    /// Way index of the MRU line (valid when `mru_line` is not `NO_LINE`).
    mru_way: Vec<u32>,
    sets: usize,
    ways: usize,
    tick: u64,
}

impl TagArray {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        debug_assert!(ways <= 16, "inline sets sized for ways <= 16");
        TagArray {
            lines: vec![NO_LINE; sets * ways],
            slots: vec![NO_SLOT; sets * ways],
            stamps: vec![0; sets * ways],
            mru_line: vec![NO_LINE; sets],
            mru_way: vec![NO_SLOT; sets],
            sets,
            ways,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % self.sets as u64) as usize
    }

    /// Finds `line`'s way, returning its slab slot.
    #[inline]
    fn lookup(&self, line: LineAddr) -> Option<u32> {
        let set = self.set_of(line);
        if self.mru_line[set] == line {
            let base = set * self.ways;
            return Some(self.slots[base + self.mru_way[set] as usize]);
        }
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.lines[base + w] == line {
                return Some(self.slots[base + w]);
            }
        }
        None
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.lookup(line).is_some()
    }

    fn touch(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if self.mru_line[set] == line {
            // Already the newest stamp in its set; re-stamping preserves
            // the relative order, so skip it.
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.lines[base + w] == line {
                self.stamps[base + w] = tick;
                self.mru_line[set] = line;
                self.mru_way[set] = w as u32;
                return;
            }
        }
    }

    fn remove(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if self.mru_line[set] == line {
            self.mru_line[set] = NO_LINE;
            self.mru_way[set] = NO_SLOT;
        }
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.lines[base + w] == line {
                self.lines[base + w] = NO_LINE;
                return;
            }
        }
    }

    /// Inserts `line` (cached in slab slot `slot`); if the set is full,
    /// evicts and returns the victim's `(line, slot, forced)` preferring
    /// unlocked lines (per `evictable`, judged by slab slot). `forced` is
    /// true when a locked line had to be forced out.
    fn insert<F>(
        &mut self,
        line: LineAddr,
        slot: u32,
        evictable: F,
    ) -> Option<(LineAddr, u32, bool)>
    where
        F: Fn(u32) -> bool,
    {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let base = set * self.ways;
        debug_assert!(
            (0..self.ways).all(|w| self.lines[base + w] != line),
            "double insert"
        );
        let mut way = None;
        for w in 0..self.ways {
            if self.lines[base + w] == NO_LINE {
                way = Some(w);
                break;
            }
        }
        let mut victim = None;
        let way = match way {
            Some(w) => w,
            None => {
                // LRU among evictable ways; fall back to overall LRU if all
                // ways are locked. Stamps are unique, so `min` is unique.
                let mut best: Option<(usize, u64)> = None;
                let mut best_any: Option<(usize, u64)> = None;
                for w in 0..self.ways {
                    let stamp = self.stamps[base + w];
                    if best_any.is_none_or(|(_, s)| stamp < s) {
                        best_any = Some((w, stamp));
                    }
                    if evictable(self.slots[base + w]) && best.is_none_or(|(_, s)| stamp < s) {
                        best = Some((w, stamp));
                    }
                }
                let (w, forced) = match best {
                    Some((w, _)) => (w, false),
                    None => (best_any.expect("set is full").0, true),
                };
                victim = Some((self.lines[base + w], self.slots[base + w], forced));
                w
            }
        };
        self.lines[base + way] = line;
        self.slots[base + way] = slot;
        self.stamps[base + way] = tick;
        // The inserted line carries the newest stamp in the set; this also
        // retires any hint pointing at the victim.
        self.mru_line[set] = line;
        self.mru_way[set] = way as u32;
        victim
    }

    fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().copied().filter(|l| *l != NO_LINE)
    }

    fn clear(&mut self) {
        self.lines.fill(NO_LINE);
        self.mru_line.fill(NO_LINE);
        self.mru_way.fill(NO_SLOT);
    }
}

/// Running eviction counters kept by the hierarchy (folded into run stats
/// as `machine.evict.*` by the owning core model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionCounts {
    /// LLC evictions of any kind.
    pub total: u64,
    /// Evictions that had to force out an LPO-locked line.
    pub forced: u64,
    /// Evictions of dirty lines (caused a writeback).
    pub dirty: u64,
}

/// The result of probing the hierarchy for a line without touching it:
/// where it would hit, plus (internally) the slab slot so a following
/// [`CacheHierarchy::access_probed`] resolves data with no further lookup.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Where an access would hit right now.
    pub level: HitLevel,
    slot: u32,
}

/// The full cache hierarchy: shared slab data store plus per-level SoA tag
/// arrays carrying slab slot ids.
#[derive(Clone)]
pub struct CacheHierarchy {
    /// Shared data store for every cached line.
    slab: LineSlab,
    l1: Vec<TagArray>,
    l2: Vec<TagArray>,
    llc: TagArray,
    l1_lat: u64,
    l2_lat: u64,
    llc_lat: u64,
    remote_lat: u64,
    store_cost: u64,
    evictions: EvictionCounts,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores per `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let cores = cfg.cores as usize;
        CacheHierarchy {
            slab: LineSlab::new(cores.div_ceil(64)),
            l1: (0..cores).map(|_| TagArray::new(&cfg.l1)).collect(),
            l2: (0..cores).map(|_| TagArray::new(&cfg.l2)).collect(),
            llc: TagArray::new(&cfg.llc),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            llc_lat: cfg.llc.latency,
            remote_lat: cfg.llc.latency + 18,
            store_cost: cfg.store_cost,
            evictions: EvictionCounts::default(),
        }
    }

    /// Eviction counters since construction.
    pub fn eviction_counts(&self) -> EvictionCounts {
        self.evictions
    }

    /// Number of cores the hierarchy was built for.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Where would an access by `core` to `line` hit right now? The
    /// returned [`Probe`] can be handed to
    /// [`access_probed`](Self::access_probed) to avoid a second tag walk.
    pub fn probe(&self, core: usize, line: LineAddr) -> Probe {
        if let Some(slot) = self.l1[core].lookup(line) {
            return Probe {
                level: HitLevel::L1,
                slot,
            };
        }
        if let Some(slot) = self.l2[core].lookup(line) {
            return Probe {
                level: HitLevel::L2,
                slot,
            };
        }
        if let Some(slot) = self.llc.lookup(line) {
            let level = if self.slab.private_elsewhere(slot, core) {
                HitLevel::Remote
            } else {
                HitLevel::Llc
            };
            return Probe { level, slot };
        }
        Probe {
            level: HitLevel::Memory,
            slot: NO_SLOT,
        }
    }

    /// Where would an access by `core` to `line` hit right now?
    pub fn peek_level(&self, core: usize, line: LineAddr) -> HitLevel {
        self.probe(core, line).level
    }

    /// Performs an access by `core` to `line`.
    ///
    /// On a miss the caller must supply `fill`: the line data (from the
    /// memory system, with WPQ forwarding) and its persistent bit.
    /// `miss_latency` is the additional memory latency beyond the LLC
    /// lookup, also supplied by the caller (it depends on DRAM vs PM).
    ///
    /// For [`AccessKind::Store`] the data is *not* modified here — the
    /// caller mutates the line via [`line_mut`](Self::line_mut) afterwards
    /// (and sets dirty/owner bits per its scheme).
    ///
    /// # Panics
    ///
    /// Panics if the access misses and `fill` is `None`.
    pub fn access(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        fill: Option<([u8; LINE_SIZE], bool)>,
        miss_latency: u64,
    ) -> Access {
        let probe = self.probe(core, line);
        self.access_probed(core, line, kind, probe, fill, miss_latency)
    }

    /// [`access`](Self::access) with the hit level pre-resolved by
    /// [`probe`](Self::probe) — the fast path for callers that needed the
    /// level first to decide whether to fetch fill data. `probe` must come
    /// from the same `(core, line)` with no intervening cache mutation.
    pub fn access_probed(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        probe: Probe,
        fill: Option<([u8; LINE_SIZE], bool)>,
        miss_latency: u64,
    ) -> Access {
        debug_assert_eq!(probe.level, self.probe(core, line).level, "stale probe");
        let level = probe.level;
        let mut slot = probe.slot;
        let mut evicted = None;
        if level == HitLevel::Memory {
            let (data, pbit) = fill.expect("miss requires fill data");
            let mut st = LineState::from_bytes(data);
            st.pbit = pbit;
            slot = self.slab.insert(line, st);
            let slab = &self.slab;
            if let Some((victim, vslot, forced)) =
                self.llc.insert(line, slot, |s| slab.state(s).evictable())
            {
                // Back-invalidate only the cores whose private levels hold
                // the victim (ascending core order, like the full scan the
                // masks replace).
                let (slab, l1s, l2s) = (&self.slab, &mut self.l1, &mut self.l2);
                slab.for_each_private(vslot, None, |c| {
                    l1s[c].remove(victim);
                    l2s[c].remove(victim);
                });
                let state = self.slab.remove_slot(victim, vslot);
                self.evictions.total += 1;
                if forced {
                    self.evictions.forced += 1;
                }
                if state.dirty {
                    self.evictions.dirty += 1;
                }
                evicted = Some(Evicted {
                    line: victim,
                    state,
                    forced,
                });
            }
        }
        // Promote into the private levels (tag-only; no writeback needed
        // since data lives in the shared slab). A silent private-level
        // victim keeps its slab entry — only its presence bit dies.
        if !self.l1[core].contains(line) {
            if let Some((_, vslot, _)) = self.l1[core].insert(line, slot, |_| true) {
                self.slab.clear_l1(vslot, core);
            }
            self.slab.set_l1(slot, core);
        }
        if !self.l2[core].contains(line) {
            if let Some((_, vslot, _)) = self.l2[core].insert(line, slot, |_| true) {
                self.slab.clear_l2(vslot, core);
            }
            self.slab.set_l2(slot, core);
        }
        self.l1[core].touch(line);
        self.l2[core].touch(line);
        self.llc.touch(line);
        if kind == AccessKind::Store {
            // Write-invalidate other cores' private copies (ascending core
            // order over the presence masks).
            let (slab, l1s, l2s) = (&self.slab, &mut self.l1, &mut self.l2);
            slab.for_each_private(slot, Some(core), |c| {
                l1s[c].remove(line);
                l2s[c].remove(line);
            });
            self.slab.retain_only(slot, core);
        }
        let latency = match kind {
            // Stores retire through the store buffer: they do not wait for
            // the full memory round trip, but sustained streams are bound
            // by the bandwidth of the level that owns the line — charge
            // that level's latency, capping misses at LLC + an allocation
            // penalty (the fill overlaps with later work).
            AccessKind::Store => {
                self.store_cost
                    + match level {
                        HitLevel::L1 => self.l1_lat,
                        HitLevel::L2 => self.l2_lat,
                        HitLevel::Llc => self.llc_lat,
                        HitLevel::Remote => self.remote_lat,
                        HitLevel::Memory => self.llc_lat + STORE_MISS_ALLOC,
                    }
            }
            AccessKind::Load => match level {
                HitLevel::L1 => self.l1_lat,
                HitLevel::L2 => self.l2_lat,
                HitLevel::Llc => self.llc_lat,
                HitLevel::Remote => self.remote_lat,
                HitLevel::Memory => self.llc_lat + miss_latency,
            },
        };
        Access {
            latency,
            level,
            evicted,
            pbit: self.slab.state(slot).pbit,
        }
    }

    /// Read access to a cached line's state.
    pub fn line(&self, line: LineAddr) -> Option<&LineState> {
        let slot = self.slab.slot_of(line)?;
        Some(self.slab.state(slot))
    }

    /// Mutable access to a cached line's state (data, dirty, tag bits).
    pub fn line_mut(&mut self, line: LineAddr) -> Option<&mut LineState> {
        let slot = self.slab.slot_of(line)?;
        Some(self.slab.state_mut(slot))
    }

    /// Whether `line` is present anywhere in the hierarchy.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.slab.slot_of(line).is_some()
    }

    /// Copies a line's current data out and clears its dirty bit, leaving
    /// the line cached (the effect of `clwb` or a hardware DPO snapshot).
    pub fn writeback_copy(&mut self, line: LineAddr) -> Option<[u8; LINE_SIZE]> {
        let slot = self.slab.slot_of(line)?;
        let s = self.slab.state_mut(slot);
        s.dirty = false;
        Some(s.data)
    }

    /// Discards every cached line without writeback — a power failure.
    pub fn invalidate_all(&mut self) {
        self.slab.clear();
        for t in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            t.clear();
        }
        self.llc.clear();
    }

    /// Iterates over all cached lines and their states (slab slot order).
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, &LineState)> {
        self.slab.iter()
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.slab.len
    }

    /// Number of cached lines whose dirty bit is set — the telemetry
    /// sampler's dirty-line gauge. O(slab slots); the sampler's
    /// decimating buffer bounds how often this walk runs.
    pub fn dirty_lines(&self) -> u64 {
        self.slab.iter().filter(|(_, s)| s.dirty).count() as u64
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.slab.len == 0
    }

    /// Consistency check: every tag-array line must be in the data slab
    /// (with matching slot ids and presence masks) and every L1/L2 line
    /// must also be in the LLC (inclusivity).
    pub fn check_inclusive(&self) -> bool {
        let llc_ok = self.llc.lines().all(|l| self.slab.slot_of(l).is_some());
        let priv_ok = self
            .l1
            .iter()
            .chain(self.l2.iter())
            .flat_map(|t| t.lines())
            .all(|l| self.llc.contains(l));
        let store_ok = self.slab.iter().all(|(l, _)| self.llc.contains(l));
        let masks_ok = (0..self.l1.len()).all(|c| {
            self.l1[c].lines().all(|l| {
                self.slab
                    .slot_of(l)
                    .is_some_and(|s| self.slab.test_l1(s, c))
            }) && self.l2[c].lines().all(|l| {
                self.slab
                    .slot_of(l)
                    .is_some_and(|s| self.slab.test_l2(s, c))
            })
        });
        llc_ok && priv_ok && store_ok && masks_ok
    }
}

impl std::fmt::Debug for CacheHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHierarchy")
            .field("cores", &self.l1.len())
            .field("cached_lines", &self.slab.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid::Rid;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SystemConfig::small())
    }

    fn fill() -> Option<([u8; LINE_SIZE], bool)> {
        Some(([7u8; LINE_SIZE], true))
    }

    #[test]
    fn miss_then_hits_climb_levels() {
        let mut h = hierarchy();
        let a = h.access(0, LineAddr(1), AccessKind::Load, fill(), 150);
        assert_eq!(a.level, HitLevel::Memory);
        assert_eq!(a.latency, 42 + 150);
        let a = h.access(0, LineAddr(1), AccessKind::Load, None, 150);
        assert_eq!(a.level, HitLevel::L1);
        assert_eq!(a.latency, 4);
    }

    #[test]
    fn fill_sets_pbit_from_page_table() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, Some(([0; 64], true)), 0);
        assert!(h.line(LineAddr(1)).unwrap().pbit);
        h.access(0, LineAddr(2), AccessKind::Load, Some(([0; 64], false)), 0);
        assert!(!h.line(LineAddr(2)).unwrap().pbit);
    }

    #[test]
    fn remote_hit_detected() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        let a = h.access(1, LineAddr(1), AccessKind::Load, None, 0);
        assert_eq!(a.level, HitLevel::Remote);
    }

    #[test]
    fn many_core_hierarchy_crosses_mask_words() {
        // 128 cores: the presence stripes are two words per slot. Cores
        // from different words share, detect remote hits, and get
        // write-invalidated exactly like the single-word fast path.
        let mut cfg = SystemConfig::small();
        cfg.cores = 128;
        let mut h = CacheHierarchy::new(&cfg);
        let line = LineAddr(1);
        for core in [0usize, 3, 63, 64, 70, 127] {
            h.access(
                core,
                line,
                AccessKind::Load,
                (core == 0).then_some(([7u8; LINE_SIZE], true)),
                0,
            );
        }
        // Every sharer now hits locally; an outsider sees a remote hit.
        for core in [3usize, 64, 127] {
            assert_eq!(h.peek_level(core, line), HitLevel::L1, "core {core}");
        }
        assert_eq!(h.peek_level(9, line), HitLevel::Remote);
        assert!(h.check_inclusive());
        // A store from a high-word core invalidates all other sharers.
        h.access(70, line, AccessKind::Store, None, 0);
        for core in [0usize, 3, 63, 64, 127] {
            assert_eq!(h.peek_level(core, line), HitLevel::Remote, "core {core}");
        }
        assert_eq!(h.peek_level(70, line), HitLevel::L1);
        assert!(h.check_inclusive());
        // Evicting the line back-invalidates sharers across both words.
        h.access(127, line, AccessKind::Load, None, 0);
        let span = 4 * (cfg.llc.size_bytes / 64);
        for i in 2..span + 2 {
            if !h.contains(LineAddr(i)) {
                h.access(1, LineAddr(i), AccessKind::Load, Some(([0; 64], false)), 0);
            }
        }
        assert!(!h.contains(line), "line evicted by LLC pressure");
        assert_eq!(h.peek_level(70, line), HitLevel::Memory);
        assert_eq!(h.peek_level(127, line), HitLevel::Memory);
        assert!(h.check_inclusive());
    }

    #[test]
    fn store_invalidates_other_cores_private_copies() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        h.access(1, LineAddr(1), AccessKind::Load, None, 0);
        // Core 1 writes: core 0's private copy must go away.
        h.access(1, LineAddr(1), AccessKind::Store, None, 0);
        let a = h.access(0, LineAddr(1), AccessKind::Load, None, 0);
        assert_eq!(a.level, HitLevel::Remote); // refetched via LLC/snoop
    }

    #[test]
    fn store_latency_tracks_owning_level() {
        let mut h = hierarchy();
        // Miss: capped at LLC + allocation penalty, far below a full
        // memory round trip.
        let a = h.access(0, LineAddr(9), AccessKind::Store, fill(), 500);
        assert_eq!(a.latency, 1 + 42 + 30);
        assert_eq!(a.level, HitLevel::Memory);
        // L1 hit: store-buffer cost only.
        let a = h.access(0, LineAddr(9), AccessKind::Store, None, 500);
        assert_eq!(a.latency, 1 + 4);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn eviction_counts_track_kinds() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        assert_eq!(h.eviction_counts(), EvictionCounts::default());
        let llc_lines = cfg.llc.size_bytes / 64;
        for i in 0..llc_lines + 64 {
            h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
        }
        let c = h.eviction_counts();
        assert!(c.total >= 64);
        assert_eq!(c.forced, 0);
        assert_eq!(c.dirty, 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_and_reports() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let llc_lines = cfg.llc.size_bytes / 64;
        // Touch one more distinct set-colliding line than the LLC holds.
        let mut evicted = 0;
        for i in 0..llc_lines + 64 {
            let a = h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
            evicted += a.evicted.iter().count();
            if let Some(e) = &a.evicted {
                assert!(!h.contains(e.line));
            }
        }
        assert!(evicted >= 64);
        assert!(h.check_inclusive());
    }

    #[test]
    fn locked_lines_avoid_eviction() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        // Fill one LLC set completely, locking the LRU (first) line.
        let set_stride = sets;
        for i in 0..ways {
            h.access(0, LineAddr(i * set_stride), AccessKind::Load, fill(), 0);
        }
        h.line_mut(LineAddr(0)).unwrap().lock_bit = true;
        // Next fill in the same set must evict line at stride*1, not 0.
        let a = h.access(0, LineAddr(ways * set_stride), AccessKind::Load, fill(), 0);
        let e = a.evicted.expect("one eviction");
        assert_eq!(e.line, LineAddr(set_stride));
        assert!(!e.forced);
        assert!(h.contains(LineAddr(0)));
    }

    #[test]
    fn fully_locked_set_forces_eviction() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        for i in 0..ways {
            h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
            h.line_mut(LineAddr(i * sets)).unwrap().lock_bit = true;
        }
        let a = h.access(0, LineAddr(ways * sets), AccessKind::Load, fill(), 0);
        assert!(a.evicted.expect("one eviction").forced);
    }

    #[test]
    fn writeback_copy_clears_dirty_keeps_line() {
        let mut h = hierarchy();
        h.access(0, LineAddr(3), AccessKind::Store, fill(), 0);
        let l = h.line_mut(LineAddr(3)).unwrap();
        l.dirty = true;
        l.data[0] = 0xaa;
        let data = h.writeback_copy(LineAddr(3)).unwrap();
        assert_eq!(data[0], 0xaa);
        assert!(!h.line(LineAddr(3)).unwrap().dirty);
        assert!(h.contains(LineAddr(3)));
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut h = hierarchy();
        h.access(0, LineAddr(1), AccessKind::Load, fill(), 0);
        h.access(1, LineAddr(2), AccessKind::Load, fill(), 0);
        h.invalidate_all();
        assert!(h.is_empty());
        assert_eq!(h.peek_level(0, LineAddr(1)), HitLevel::Memory);
        assert!(h.check_inclusive());
    }

    #[test]
    fn owner_rid_travels_with_line_state() {
        let mut h = hierarchy();
        h.access(0, LineAddr(5), AccessKind::Store, fill(), 0);
        h.line_mut(LineAddr(5)).unwrap().owner = Some(Rid::new(0, 1));
        assert!(h
            .line(LineAddr(5))
            .unwrap()
            .is_owned_by_other(Rid::new(1, 1)));
    }

    #[test]
    fn eviction_preserves_line_state() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        h.access(0, LineAddr(0), AccessKind::Store, fill(), 0);
        {
            let l = h.line_mut(LineAddr(0)).unwrap();
            l.dirty = true;
            l.owner = Some(Rid::new(0, 7));
            l.data[10] = 0x42;
        }
        let mut got = None;
        for i in 1..=ways {
            let a = h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
            if let Some(e) = a.evicted {
                if e.line == LineAddr(0) {
                    got = Some(e);
                }
            }
        }
        let e = got.expect("line 0 should have been evicted");
        assert!(e.state.dirty);
        assert_eq!(e.state.owner, Some(Rid::new(0, 7)));
        assert_eq!(e.state.data[10], 0x42);
    }

    #[test]
    fn way_hint_tracks_presence_under_churn() {
        let cfg = SystemConfig::small();
        let mut t = TagArray::new(&cfg.l1);
        t.insert(LineAddr(0), 0, |_| true);
        assert!(t.contains(LineAddr(0)));
        t.touch(LineAddr(0)); // MRU fast path
        t.remove(LineAddr(0));
        assert!(!t.contains(LineAddr(0)), "hint must die with the line");
        t.touch(LineAddr(0)); // absent: must not resurrect the hint
        assert!(!t.contains(LineAddr(0)));
        t.clear();
        t.insert(LineAddr(0), 0, |_| true);
        assert!(t.contains(LineAddr(0)));
    }

    #[test]
    fn way_hint_does_not_change_lru_order() {
        // Fill a set, re-touch the MRU line (fast path, no re-stamp), then
        // overflow: the victim must still be the true LRU line.
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let sets = cfg.llc.sets();
        let ways = cfg.llc.ways as u64;
        for i in 0..ways {
            h.access(0, LineAddr(i * sets), AccessKind::Load, fill(), 0);
        }
        // Newest line is MRU; touching it repeatedly must not disturb the
        // order, and re-touching the oldest promotes it.
        for _ in 0..3 {
            h.access(0, LineAddr((ways - 1) * sets), AccessKind::Load, None, 0);
        }
        h.access(0, LineAddr(0), AccessKind::Load, None, 0);
        let a = h.access(0, LineAddr(ways * sets), AccessKind::Load, fill(), 0);
        let e = a.evicted.expect("one eviction");
        assert_eq!(e.line, LineAddr(sets), "true LRU is evicted");
    }

    #[test]
    fn inclusivity_invariant_holds_under_load() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..5000u64 {
            let core = (i % cfg.cores as u64) as usize;
            h.access(core, LineAddr(i * 3 % 2048), AccessKind::Load, fill(), 0);
        }
        assert!(h.check_inclusive());
    }

    /// The slab must recycle slots through its freelist: evicting then
    /// refilling lines may not grow the arena once it has peaked.
    #[test]
    fn slab_freelist_reuses_slots_after_eviction() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        let llc_lines = cfg.llc.size_bytes / 64;
        for i in 0..llc_lines * 4 {
            h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
        }
        let peak = h.slab.keys.len();
        assert!(h.eviction_counts().total > 0, "churn must evict");
        for i in 0..llc_lines * 4 {
            h.access(0, LineAddr(i * 7 + 1), AccessKind::Load, fill(), 0);
        }
        assert_eq!(h.slab.keys.len(), peak, "freelist must recycle slots");
        assert_eq!(
            h.slab.len + h.slab.free.len(),
            h.slab.keys.len(),
            "every slot is live or free"
        );
        assert!(h.check_inclusive());
    }

    /// A crash flush (`invalidate_all`) empties the slab; subsequent fills
    /// must reuse the already-allocated arena and index.
    #[test]
    fn slab_freelist_survives_crash_flush() {
        let cfg = SystemConfig::small();
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..256u64 {
            h.access(0, LineAddr(i), AccessKind::Load, fill(), 0);
        }
        h.invalidate_all();
        assert!(h.is_empty());
        for i in 0..256u64 {
            h.access(0, LineAddr(i + 1000), AccessKind::Load, fill(), 0);
        }
        assert_eq!(h.len(), 256);
        assert!(h.check_inclusive());
    }

    /// Backward-shift deletion keeps the open-addressed index correct
    /// through colliding insert/remove churn.
    #[test]
    fn line_index_removal_preserves_probe_chains() {
        let mut idx = LineIndex::new();
        // Many keys, enough to force growth and long probe chains.
        for i in 0..1000u64 {
            idx.insert(i * 0x1000 + 3, i as u32);
        }
        for i in (0..1000u64).step_by(2) {
            assert_eq!(idx.remove(i * 0x1000 + 3), Some(i as u32));
        }
        for i in 0..1000u64 {
            let got = idx.get(i * 0x1000 + 3);
            if i % 2 == 0 {
                assert_eq!(got, None, "removed key {i} must be gone");
            } else {
                assert_eq!(got, Some(i as u32), "kept key {i} must survive");
            }
        }
        // Reinsert the removed half.
        for i in (0..1000u64).step_by(2) {
            idx.insert(i * 0x1000 + 3, i as u32 + 5000);
        }
        for i in (0..1000u64).step_by(2) {
            assert_eq!(idx.get(i * 0x1000 + 3), Some(i as u32 + 5000));
        }
    }
}
