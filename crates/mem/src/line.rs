//! Cache-line state, including ASAP's tag extensions (§4.3 ❷).

use std::fmt;

use asap_pmem::LINE_BYTES;

use crate::rid::Rid;

/// Size of a cache line's payload in bytes.
pub const LINE_SIZE: usize = LINE_BYTES as usize;

/// The full state of one cached line: data plus the tag extensions ASAP
/// adds to every cache level.
///
/// - `dirty` — ordinary modified bit;
/// - `pbit` — set when the line was brought in from a page whose page-table
///   persistent bit is set (§4.6);
/// - `lock_bit` — set while the line's first-write LPO is outstanding; a
///   locked line may not be evicted and its DPO may not be initiated
///   (§4.6.1);
/// - `owner` — the `OwnerRID` of the atomic region that last wrote the
///   line, used for data-dependence detection (§4.6.3).
///
/// # Example
///
/// ```
/// use asap_mem::{LineState, Rid};
///
/// let mut l = LineState::from_bytes([0u8; 64]);
/// l.pbit = true;
/// l.owner = Some(Rid::new(0, 1));
/// assert!(l.is_owned_by_other(Rid::new(1, 1)));
/// assert!(!l.is_owned_by_other(Rid::new(0, 1)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LineState {
    /// The 64 bytes of the line.
    pub data: [u8; LINE_SIZE],
    /// Modified since fill.
    pub dirty: bool,
    /// Persistent-page bit copied from the page table on fill.
    pub pbit: bool,
    /// First-write LPO still outstanding; blocks eviction and DPOs.
    pub lock_bit: bool,
    /// Atomic region that last wrote this line, if still tracked.
    pub owner: Option<Rid>,
}

impl LineState {
    /// A clean line holding `data`.
    pub fn from_bytes(data: [u8; LINE_SIZE]) -> Self {
        LineState {
            data,
            dirty: false,
            pbit: false,
            lock_bit: false,
            owner: None,
        }
    }

    /// Whether `rid` would observe a cross-region access: the line has an
    /// owner and it is not `rid`.
    pub fn is_owned_by_other(&self, rid: Rid) -> bool {
        self.owner.is_some_and(|o| o != rid)
    }

    /// Whether the line can be evicted (LockBit clear, §4.6.1).
    pub fn evictable(&self) -> bool {
        !self.lock_bit
    }
}

impl Default for LineState {
    fn default() -> Self {
        LineState::from_bytes([0u8; LINE_SIZE])
    }
}

impl fmt::Debug for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineState")
            .field("dirty", &self.dirty)
            .field("pbit", &self.pbit)
            .field("lock_bit", &self.lock_bit)
            .field("owner", &self.owner)
            .field("data[0..8]", &&self.data[0..8])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_line_is_clean_and_unowned() {
        let l = LineState::default();
        assert!(!l.dirty && !l.pbit && !l.lock_bit);
        assert_eq!(l.owner, None);
        assert!(l.evictable());
    }

    #[test]
    fn ownership_comparison() {
        let mut l = LineState::default();
        assert!(!l.is_owned_by_other(Rid::new(0, 0))); // no owner at all
        l.owner = Some(Rid::new(1, 5));
        assert!(l.is_owned_by_other(Rid::new(1, 6)));
        assert!(!l.is_owned_by_other(Rid::new(1, 5)));
    }

    #[test]
    fn lock_bit_blocks_eviction() {
        let l = LineState {
            lock_bit: true,
            ..LineState::default()
        };
        assert!(!l.evictable());
    }

    #[test]
    fn debug_shows_flags() {
        let l = LineState::default();
        let s = format!("{l:?}");
        assert!(s.contains("dirty") && s.contains("lock_bit"));
    }
}
