//! Persist-operation descriptors and memory-system events.

use std::fmt;

use asap_pmem::LineAddr;
use asap_sim::Cycle;

use crate::line::LINE_SIZE;
use crate::rid::Rid;

/// Unique identifier of a submitted persist operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What a persist operation writes to persistent memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistKind {
    /// Log persist operation: a log *data entry* (old value for undo, new
    /// value for redo).
    Lpo,
    /// A log record header (RID, state, entry addresses — Fig. 5a).
    LogHeader,
    /// Data persist operation: in-place write of modified data.
    Dpo,
    /// Ordinary dirty-line writeback on LLC eviction.
    WriteBack,
    /// A software persist (`clwb`-initiated writeback of log or data).
    SwPersist,
    /// A software commit marker / log-tail update.
    Marker,
}

impl PersistKind {
    /// Stable lowercase name used in statistics counters.
    pub fn name(self) -> &'static str {
        match self {
            PersistKind::Lpo => "lpo",
            PersistKind::LogHeader => "log_header",
            PersistKind::Dpo => "dpo",
            PersistKind::WriteBack => "writeback",
            PersistKind::SwPersist => "sw_persist",
            PersistKind::Marker => "marker",
        }
    }
}

/// One 64-byte write travelling to the persistence domain.
#[derive(Clone, Copy)]
pub struct PersistOp {
    /// What kind of write this is (for statistics and drop rules).
    pub kind: PersistKind,
    /// The PM line being written.
    pub target: LineAddr,
    /// The 64 bytes to write.
    pub data: [u8; LINE_SIZE],
    /// The atomic region on whose behalf the write happens, if any.
    pub rid: Option<Rid>,
    /// For LPOs: the *data* line whose old value this log entry holds.
    /// Used by the DPO-dropping optimization (§5.1) — the LPO "includes
    /// the address of the DPO".
    pub logged_data_line: Option<LineAddr>,
}

impl PersistOp {
    /// Convenience constructor for ops that don't log another line.
    pub fn new(
        kind: PersistKind,
        target: LineAddr,
        data: [u8; LINE_SIZE],
        rid: Option<Rid>,
    ) -> Self {
        PersistOp {
            kind,
            target,
            data,
            rid,
            logged_data_line: None,
        }
    }
}

impl fmt::Debug for PersistOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistOp")
            .field("kind", &self.kind)
            .field("target", &self.target)
            .field("rid", &self.rid)
            .field("logged_data_line", &self.logged_data_line)
            .finish()
    }
}

/// Notifications surfaced by [`MemSystem::advance_to`].
///
/// [`MemSystem::advance_to`]: crate::system::MemSystem::advance_to
#[derive(Clone, Debug)]
pub enum MemEvent {
    /// The op was accepted into a WPQ — per ADR this is the moment the
    /// persist operation *completes* (§4.1). `ack_at` is when the issuing
    /// cache controller learns of it (one on-chip hop later).
    Accepted {
        /// The operation's id.
        id: OpId,
        /// A copy of the operation.
        op: PersistOp,
        /// Acceptance (= persistence) time.
        at: Cycle,
        /// Time the ack reaches the issuing controller.
        ack_at: Cycle,
    },
    /// The op's bytes physically reached the PM media (traffic accounting;
    /// dropped ops never produce this).
    PmWritten {
        /// The operation's id.
        id: OpId,
        /// A copy of the operation.
        op: PersistOp,
        /// Media write completion time.
        at: Cycle,
    },
}

impl MemEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> Cycle {
        match self {
            MemEvent::Accepted { at, .. } | MemEvent::PmWritten { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(PersistKind::Lpo.name(), "lpo");
        assert_eq!(PersistKind::Dpo.name(), "dpo");
        assert_eq!(PersistKind::WriteBack.name(), "writeback");
        assert_eq!(PersistKind::LogHeader.name(), "log_header");
        assert_eq!(PersistKind::SwPersist.name(), "sw_persist");
        assert_eq!(PersistKind::Marker.name(), "marker");
    }

    #[test]
    fn new_op_has_no_logged_line() {
        let op = PersistOp::new(PersistKind::Dpo, LineAddr(1), [0; 64], None);
        assert_eq!(op.logged_data_line, None);
    }

    #[test]
    fn event_at_returns_timestamp() {
        let op = PersistOp::new(PersistKind::Dpo, LineAddr(1), [0; 64], None);
        let e = MemEvent::Accepted {
            id: OpId(1),
            op,
            at: Cycle(5),
            ack_at: Cycle(6),
        };
        assert_eq!(e.at(), Cycle(5));
        let e = MemEvent::PmWritten {
            id: OpId(1),
            op,
            at: Cycle(9),
        };
        assert_eq!(e.at(), Cycle(9));
    }

    #[test]
    fn debug_impls_nonempty() {
        let op = PersistOp::new(PersistKind::Lpo, LineAddr(2), [0; 64], Some(Rid::new(0, 1)));
        assert!(format!("{op:?}").contains("Lpo"));
        assert_eq!(OpId(3).to_string(), "op3");
    }
}
