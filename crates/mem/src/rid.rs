//! Atomic-region identifiers (§5.6).

use std::fmt;

/// Identifier of one atomic region.
///
/// Per §5.6, a RID is the pair of the `ThreadID` (so threads never need to
/// synchronize when assigning region IDs) and a per-thread monotonically
/// increasing `LocalRID`. The low bits of the `LocalRID` select which memory
/// channel hosts the region's Dependence List entry.
///
/// # Example
///
/// ```
/// use asap_mem::Rid;
///
/// let r = Rid::new(2, 17);
/// assert_eq!(r.thread(), 2);
/// assert_eq!(r.local(), 17);
/// assert_eq!(r.channel(4), 1); // 17 % 4
/// assert_eq!(r.next(), Rid::new(2, 18));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    thread: u32,
    local: u64,
}

impl Rid {
    /// Creates a region ID for `thread`'s `local`-th region.
    pub fn new(thread: u32, local: u64) -> Self {
        Rid { thread, local }
    }

    /// The owning thread's ID.
    pub fn thread(self) -> u32 {
        self.thread
    }

    /// The per-thread region counter.
    pub fn local(self) -> u64 {
        self.local
    }

    /// The same thread's next region (control-dependence predecessor
    /// relationship: `r` is the predecessor of `r.next()`).
    pub fn next(self) -> Rid {
        Rid {
            thread: self.thread,
            local: self.local + 1,
        }
    }

    /// The same thread's previous region, if any.
    pub fn prev(self) -> Option<Rid> {
        self.local.checked_sub(1).map(|local| Rid {
            thread: self.thread,
            local,
        })
    }

    /// The memory channel hosting this region's Dependence List entry,
    /// chosen by the LSBs of the `LocalRID` (§5.6).
    ///
    /// # Panics
    ///
    /// Panics if `num_channels` is zero.
    pub fn channel(self, num_channels: u32) -> u32 {
        assert!(num_channels > 0, "need at least one channel");
        (self.local % num_channels as u64) as u32
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.{}", self.thread, self.local)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.{}", self.thread, self.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_and_prev_are_inverses() {
        let r = Rid::new(3, 5);
        assert_eq!(r.next().prev(), Some(r));
        assert_eq!(Rid::new(0, 0).prev(), None);
    }

    #[test]
    fn channel_uses_local_lsbs() {
        assert_eq!(Rid::new(0, 0).channel(4), 0);
        assert_eq!(Rid::new(0, 7).channel(4), 3);
        assert_eq!(Rid::new(9, 7).channel(4), 3); // thread id irrelevant
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        Rid::new(0, 0).channel(0);
    }

    #[test]
    fn ordering_is_thread_then_local() {
        assert!(Rid::new(0, 9) < Rid::new(1, 0));
        assert!(Rid::new(1, 1) < Rid::new(1, 2));
    }

    #[test]
    fn display_matches_debug() {
        let r = Rid::new(2, 7);
        assert_eq!(format!("{r}"), "R2.7");
        assert_eq!(format!("{r:?}"), "R2.7");
    }
}
