//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small slice of `rand` it actually uses as a path
//! dependency (see `[workspace.dependencies]` in the root manifest). The
//! package keeps the upstream name so workload code is source-compatible with
//! the real crate.
//!
//! Determinism is part of the contract: `StdRng` here is xoshiro256++ seeded
//! via SplitMix64, and every sampling method derives from `next_u64` with
//! fixed arithmetic, so a given seed yields the same stream on every run and
//! platform. The simulator's reproducibility tests rely on this.

#![warn(missing_docs)]

use core::ops::{Bound, RangeBounds};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly over their whole domain by [`RngExt::random`].
pub trait Uniformable: Sized {
    /// Draws a uniformly distributed value.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniformable_int {
    ($($t:ty),*) => {$(
        impl Uniformable for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniformable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniformable for bool {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniformable for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The predecessor of `self` (used to close half-open ranges).
    fn prev(self) -> Self;
    /// The largest representable value.
    fn max_value() -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                // Modulo draw: span is far below 2^64 everywhere in this
                // workspace, so the bias is negligible and determinism is
                // what matters.
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`], mirroring the upstream extension trait.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Uniformable>(&mut self) -> T {
        T::uniform(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of [0, 1]");
        f64::uniform(self) < p
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("random_range: range must have an included start")
            }
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.prev(),
            Bound::Unbounded => T::max_value(),
        };
        T::sample_inclusive(self, lo, hi)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.random_range(5..=15);
            assert!((5..=15).contains(&w));
            let u: usize = r.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_single_value() {
        let mut r = StdRng::seed_from_u64(3);
        let v: u64 = r.random_range(4..=4);
        assert_eq!(v, 4);
    }
}
