//! Grid progress tracking: one shared [`ProgressState`] behind both the
//! opt-in stderr status line (`ASAP_PROGRESS=1`) and the `/progress`
//! endpoint of the observability server (`ASAP_HTTP`).
//!
//! Counting is always on — `tick` is two relaxed atomic adds, cheap
//! enough to pay unconditionally — so the HTTP endpoint works whether or
//! not the stderr line is enabled. Only the *drawing* is gated by
//! `ASAP_PROGRESS`. The status line is redrawn in place on stderr with
//! `\r`, rate-limited to ~10 Hz, erased (erase-to-EOL) when the grid
//! finishes or a `note!`/`warn!` needs the terminal (via the
//! status-line hook in `asap_sim::obs::log`), and never touches stdout.
//! The ETA prints `--:--` until at least one cell and ~100 ms have
//! elapsed — no `inf`/`NaN` nonsense at start-up.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use asap_sim::obs::log as obs_log;

/// Elapsed time below which rates/ETAs are considered unestimable.
const MIN_ESTIMATE_MS: u64 = 100;

/// Shared counters for one grid run; all atomic, so the probe loop and
/// every pool worker tick without a lock.
pub(crate) struct ProgressState {
    total: usize,
    done: AtomicUsize,
    hits: AtomicUsize,
    start: Instant,
}

impl ProgressState {
    fn new(total: usize) -> Self {
        ProgressState {
            total,
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            start: Instant::now(),
        }
    }

    /// A point-in-time view with derived rate/ETA (None = unestimable).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let done = self.done.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let estimable = done > 0 && elapsed_ms >= MIN_ESTIMATE_MS;
        let rate = estimable.then(|| done as f64 / (elapsed_ms as f64 / 1000.0));
        let eta_s = rate
            .filter(|r| *r > 1e-9)
            .map(|r| self.total.saturating_sub(done) as f64 / r);
        ProgressSnapshot {
            total: self.total,
            done,
            warm: hits,
            elapsed_s: elapsed_ms as f64 / 1000.0,
            cells_per_s: rate,
            eta_s,
        }
    }
}

/// Derived progress numbers; `None` means "not estimable yet" and
/// renders as `--:--` on stderr / `null` in JSON.
pub(crate) struct ProgressSnapshot {
    pub total: usize,
    pub done: usize,
    /// Cells served without simulating (cache hits + intra-grid dedup).
    pub warm: usize,
    pub elapsed_s: f64,
    pub cells_per_s: Option<f64>,
    pub eta_s: Option<f64>,
}

impl ProgressSnapshot {
    /// The `/progress` JSON document.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"));
        let hit_ratio = (self.done > 0).then(|| self.warm as f64 / self.done as f64);
        format!(
            "{{\"active\":true,\"total\":{},\"done\":{},\"warm\":{},\
             \"elapsed_s\":{:.3},\"cells_per_s\":{},\"eta_s\":{},\
             \"cache_hit_ratio\":{}}}",
            self.total,
            self.done,
            self.warm,
            self.elapsed_s,
            opt(self.cells_per_s),
            opt(self.eta_s),
            opt(hit_ratio),
        )
    }
}

/// The most recent grid's state, installed at grid start so the
/// `/progress` handler can reach it from server threads.
fn current_slot() -> &'static Mutex<Option<Arc<ProgressState>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<ProgressState>>>> = OnceLock::new();
    SLOT.get_or_init(Mutex::default)
}

/// JSON for `/progress`: the live snapshot, or `{"active":false}` when
/// no grid has started in this process.
pub(crate) fn progress_json() -> String {
    match current_slot().lock().unwrap().as_ref() {
        Some(state) => state.snapshot().to_json(),
        None => "{\"active\":false}".to_string(),
    }
}

/// A clone of the current grid's state, if any (used by the run report).
pub(crate) fn current_state() -> Option<Arc<ProgressState>> {
    current_slot().lock().unwrap().clone()
}

/// Per-grid handle owned by `run_grid_with`: counts always, draws when
/// `ASAP_PROGRESS` is on.
pub(crate) struct Progress {
    draw: bool,
    state: Arc<ProgressState>,
    /// Milliseconds-since-start of the last redraw (`u64::MAX` = none
    /// yet); doubles as the redraw mutex via compare-exchange.
    last_ms: AtomicU64,
}

impl Progress {
    /// Reads `ASAP_PROGRESS` (`1`/`on`/`true`/`yes` enable drawing) and
    /// installs the state for the `/progress` endpoint.
    pub fn from_env(total: usize) -> Self {
        let v = std::env::var("ASAP_PROGRESS").unwrap_or_default();
        let draw = matches!(v.trim(), "1" | "on" | "true" | "yes") && total > 0;
        let state = Arc::new(ProgressState::new(total));
        *current_slot().lock().unwrap() = Some(Arc::clone(&state));
        Progress {
            draw,
            state,
            last_ms: AtomicU64::new(u64::MAX),
        }
    }

    /// Marks one cell finished (`served_warm`: without simulating — a
    /// cache hit or an intra-grid dedup copy) and maybe redraws.
    pub fn tick(&self, served_warm: bool) {
        if served_warm {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.state.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.draw {
            return;
        }
        let now_ms = self.state.start.elapsed().as_millis() as u64;
        let last = self.last_ms.load(Ordering::Relaxed);
        if done < self.state.total && last != u64::MAX && now_ms < last.saturating_add(100) {
            return;
        }
        // One worker wins the redraw; losers just move on.
        if self
            .last_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let snap = self.state.snapshot();
        let rate = snap
            .cells_per_s
            .map_or_else(|| "--".to_string(), |r| format!("{r:.1}"));
        let eta = snap
            .eta_s
            .map_or_else(|| "--:--".to_string(), |e| format!("{e:.0}s"));
        let hit_pct = 100.0 * snap.warm as f64 / done.max(1) as f64;
        // Erase-to-EOL after the text so a shorter redraw never leaves a
        // tail of the previous, longer line behind.
        eprint!(
            "\r[grid] {done}/{} cells  {rate} cells/s  ETA {eta}  cache {hit_pct:.0}% hit\x1b[K",
            snap.total
        );
        obs_log::status_line_active(true);
    }

    /// Erases the status line so whatever stderr prints next (run-cache
    /// summary, wall-clock notes) starts on a clean column.
    pub fn finish(&self) {
        if self.draw {
            obs_log::clear_status_line();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_guards_rate_and_eta_at_start() {
        let state = ProgressState::new(10);
        // Zero cells done: nothing estimable regardless of elapsed time.
        let snap = state.snapshot();
        assert_eq!(snap.done, 0);
        assert!(snap.cells_per_s.is_none());
        assert!(snap.eta_s.is_none());
        let json = snap.to_json();
        assert!(json.contains("\"cells_per_s\":null"), "{json}");
        assert!(json.contains("\"eta_s\":null"), "{json}");
        assert!(json.contains("\"cache_hit_ratio\":null"), "{json}");

        // Cells done but elapsed below the floor: still unestimable
        // (this is the zero-elapsed guard — no inf/NaN ETAs).
        state.done.fetch_add(3, Ordering::Relaxed);
        if state.start.elapsed().as_millis() < u128::from(MIN_ESTIMATE_MS) {
            assert!(state.snapshot().cells_per_s.is_none());
        }

        // Backdate the start: now rate and ETA must materialize.
        let state = ProgressState {
            total: 10,
            done: AtomicUsize::new(4),
            hits: AtomicUsize::new(2),
            start: Instant::now() - std::time::Duration::from_secs(2),
        };
        let snap = state.snapshot();
        let rate = snap.cells_per_s.expect("rate estimable");
        assert!(rate > 0.0);
        let eta = snap.eta_s.expect("eta estimable");
        assert!(eta > 0.0);
        let json = snap.to_json();
        assert!(json.contains("\"active\":true"), "{json}");
        assert!(json.contains("\"total\":10"), "{json}");
        assert!(json.contains("\"done\":4"), "{json}");
        assert!(json.contains("\"cache_hit_ratio\":0.500"), "{json}");
    }

    #[test]
    fn ticks_count_even_when_drawing_is_off() {
        let p = Progress {
            draw: false,
            state: Arc::new(ProgressState::new(5)),
            last_ms: AtomicU64::new(u64::MAX),
        };
        p.tick(true);
        p.tick(false);
        let snap = p.state.snapshot();
        assert_eq!(snap.done, 2);
        assert_eq!(snap.warm, 1);
        p.finish();
    }
}
