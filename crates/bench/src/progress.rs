//! Opt-in live progress line for grid runs (`ASAP_PROGRESS=1`).
//!
//! Off by default and never touches stdout: the status line is redrawn
//! in place on stderr with `\r`, rate-limited to ~10 Hz, and terminated
//! with a newline when the grid finishes so the run-cache summary and
//! wall-clock notes that follow start on a clean line. With the knob
//! unset the struct is inert — every call is a branch on a bool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Shared by the probe loop and every pool worker; all state is atomic
/// so ticks need no lock.
pub(crate) struct Progress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    hits: AtomicUsize,
    start: Instant,
    /// Milliseconds-since-start of the last redraw (`u64::MAX` = none
    /// yet); doubles as the redraw mutex via compare-exchange.
    last_ms: AtomicU64,
}

impl Progress {
    /// Reads `ASAP_PROGRESS` (`1`/`on`/`true`/`yes` enable).
    pub fn from_env(total: usize) -> Self {
        let v = std::env::var("ASAP_PROGRESS").unwrap_or_default();
        let enabled = matches!(v.trim(), "1" | "on" | "true" | "yes") && total > 0;
        Progress {
            enabled,
            total,
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            start: Instant::now(),
            last_ms: AtomicU64::new(u64::MAX),
        }
    }

    /// Marks one cell finished (`served_warm`: without simulating — a
    /// cache hit or an intra-grid dedup copy) and maybe redraws.
    pub fn tick(&self, served_warm: bool) {
        if !self.enabled {
            return;
        }
        if served_warm {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_ms.load(Ordering::Relaxed);
        if done < self.total && last != u64::MAX && now_ms < last.saturating_add(100) {
            return;
        }
        // One worker wins the redraw; losers just move on.
        if self
            .last_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let secs = (now_ms as f64 / 1000.0).max(1e-3);
        let rate = done as f64 / secs;
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        let hit_pct = 100.0 * self.hits.load(Ordering::Relaxed) as f64 / done as f64;
        eprint!(
            "\r[grid] {done}/{} cells  {rate:.1} cells/s  ETA {eta:.0}s  cache {hit_pct:.0}% hit ",
            self.total
        );
    }

    /// Terminates the status line so later stderr notes start clean.
    pub fn finish(&self) {
        if self.enabled && self.done.load(Ordering::Relaxed) > 0 {
            eprintln!();
        }
    }
}
