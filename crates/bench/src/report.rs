//! The `/report` endpoint: the HTML run report regenerated on demand
//! from current process state — grid progress, the host-phase profile,
//! the full metrics registry, and the most recent cells.
//!
//! Recording is gated on [`set_live`] (flipped by `run_grid_with` while
//! an `ASAP_HTTP` server is up) so figure runs without the server pay
//! nothing beyond one relaxed atomic load per cell. Rendering walks
//! snapshots only — a request can race a running grid and at worst see
//! a slightly stale table, never tear a data structure. Same style as
//! the PR 3 `run_report` example: one self-contained file, inline CSS,
//! no JavaScript.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use asap_sim::obs::{metrics, phase};
use asap_workloads::CrashPointOutcome;

/// How many recently finished cells the report shows.
const RECENT_CAP: usize = 64;

/// How many recent crash sweeps the report keeps.
const SWEEP_CAP: usize = 8;

/// How many crash points of one sweep the report table shows.
const SWEEP_POINT_CAP: usize = 64;

/// One finished cell, as the report shows it.
pub(crate) struct CellNote {
    pub bench: String,
    pub scheme: String,
    /// How the cell was served: `miss` / `mem` / `disk` / `dedup`.
    pub cache: String,
    pub host_us: u64,
    pub sim_cycles: u64,
}

static LIVE: AtomicBool = AtomicBool::new(false);

fn recent() -> &'static Mutex<VecDeque<CellNote>> {
    static RECENT: OnceLock<Mutex<VecDeque<CellNote>>> = OnceLock::new();
    RECENT.get_or_init(Mutex::default)
}

/// Turns cell recording on/off (on only while an observability server
/// is up; recording without a reader would be waste).
pub(crate) fn set_live(live: bool) {
    LIVE.store(live, Ordering::Release);
}

/// Whether recording is on — callers check this first so the per-cell
/// `CellNote` strings are never built without a reader.
pub(crate) fn is_live() -> bool {
    LIVE.load(Ordering::Acquire)
}

/// Records one finished cell for the report's recent-cells table.
pub(crate) fn note_cell(note: CellNote) {
    if !LIVE.load(Ordering::Acquire) {
        return;
    }
    let mut q = recent().lock().unwrap();
    if q.len() == RECENT_CAP {
        q.pop_front();
    }
    q.push_back(note);
}

/// One finished crash sweep, as the report shows it: the cell identity
/// plus the per-point outcome summary off the sweep baseline.
pub(crate) struct SweepNote {
    pub bench: String,
    pub scheme: String,
    pub points: Vec<CrashPointOutcome>,
}

fn sweeps() -> &'static Mutex<VecDeque<SweepNote>> {
    static SWEEPS: OnceLock<Mutex<VecDeque<SweepNote>>> = OnceLock::new();
    SWEEPS.get_or_init(Mutex::default)
}

/// Records one finished crash sweep for the report's sweep table.
pub(crate) fn note_sweep(note: SweepNote) {
    if !LIVE.load(Ordering::Acquire) {
        return;
    }
    let mut q = sweeps().lock().unwrap();
    if q.len() == SWEEP_CAP {
        q.pop_front();
    }
    q.push_back(note);
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the live report from current snapshots.
pub(crate) fn render_html() -> String {
    let mut h = String::new();
    h.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>ASAP live run report</title>\n<style>\
         body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;color:#111}\
         h1{font-size:1.4em} h2{font-size:1.1em;margin-top:2em;\
         border-bottom:1px solid #ddd;padding-bottom:.2em}\
         table{border-collapse:collapse} td,th{padding:.2em .8em;\
         border:1px solid #ddd;text-align:right} th{background:#f5f5f5}\
         td:first-child,th:first-child{text-align:left}\
         pre{background:#f5f5f5;padding:.6em;overflow-x:auto}\
         </style></head><body>\n<h1>ASAP live run report</h1>\n",
    );

    // Progress.
    h.push_str("<h2>Grid progress</h2>\n");
    match crate::progress::current_state() {
        Some(state) => {
            let s = state.snapshot();
            let rate = s
                .cells_per_s
                .map_or_else(|| "--".into(), |r| format!("{r:.1}"));
            let eta = s
                .eta_s
                .map_or_else(|| "--:--".into(), |e| format!("{e:.0}s"));
            let _ = writeln!(
                h,
                "<p>{}/{} cells done ({} served warm), {:.1}s elapsed, \
                 {rate} cells/s, ETA {eta}.</p>",
                s.done, s.total, s.warm, s.elapsed_s
            );
        }
        None => h.push_str("<p>No grid has started in this process.</p>\n"),
    }

    // Recent cells.
    h.push_str("<h2>Recent cells</h2>\n");
    {
        let q = recent().lock().unwrap();
        if q.is_empty() {
            h.push_str("<p>None recorded yet.</p>\n");
        } else {
            h.push_str(
                "<table><tr><th>bench</th><th>scheme</th><th>served</th>\
                 <th>host &micro;s</th><th>sim cycles</th></tr>\n",
            );
            for c in q.iter().rev() {
                let _ = writeln!(
                    h,
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    html_escape(&c.bench),
                    html_escape(&c.scheme),
                    html_escape(&c.cache),
                    c.host_us,
                    c.sim_cycles
                );
            }
            h.push_str("</table>\n");
        }
    }

    // Crash sweeps (newest first), one table per sweep.
    h.push_str("<h2>Crash sweeps</h2>\n");
    {
        let q = sweeps().lock().unwrap();
        if q.is_empty() {
            h.push_str("<p>None recorded yet.</p>\n");
        } else {
            for s in q.iter().rev() {
                let crashed = s.points.iter().filter(|p| p.crashed).count();
                let _ = writeln!(
                    h,
                    "<h3>{} / {} &mdash; {} points, {} crashed</h3>",
                    html_escape(&s.bench),
                    html_escape(&s.scheme),
                    s.points.len(),
                    crashed
                );
                h.push_str(
                    "<table><tr><th>crash after</th><th>outcome</th>\
                     <th>uncommitted</th><th>replayed</th>\
                     <th>restored lines</th><th>tx</th></tr>\n",
                );
                for p in s.points.iter().take(SWEEP_POINT_CAP) {
                    let _ = writeln!(
                        h,
                        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                         <td>{}</td><td>{}</td></tr>",
                        p.crash_after,
                        if p.crashed { "crashed" } else { "completed" },
                        p.uncommitted,
                        p.replayed,
                        p.restored_lines,
                        p.tx
                    );
                }
                h.push_str("</table>\n");
                if s.points.len() > SWEEP_POINT_CAP {
                    let _ = writeln!(
                        h,
                        "<p>&hellip;{} more points not shown.</p>",
                        s.points.len() - SWEEP_POINT_CAP
                    );
                }
            }
        }
    }

    // Host-phase profile (the same JSON that lands in wall-clock records).
    h.push_str("<h2>Host-phase profile</h2>\n<pre>");
    h.push_str(&html_escape(&phase::snapshot_json()));
    h.push_str("</pre>\n");

    // Metrics registry.
    let snap = metrics::snapshot();
    h.push_str("<h2>Metrics</h2>\n");
    if !snap.counters.is_empty() {
        h.push_str("<h3>Counters</h3><table><tr><th>name</th><th>value</th></tr>\n");
        for (n, v) in &snap.counters {
            let _ = writeln!(h, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(n));
        }
        h.push_str("</table>\n");
    }
    if !snap.gauges.is_empty() {
        h.push_str("<h3>Gauges</h3><table><tr><th>name</th><th>value</th></tr>\n");
        for (n, v) in &snap.gauges {
            let _ = writeln!(h, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(n));
        }
        h.push_str("</table>\n");
    }
    if !snap.histograms.is_empty() {
        h.push_str(
            "<h3>Histograms</h3><table><tr><th>name</th><th>count</th>\
             <th>p50</th><th>p99</th><th>max</th></tr>\n",
        );
        for (n, hist) in &snap.histograms {
            let s = hist.summary();
            let _ = writeln!(
                h,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                html_escape(n),
                s.count,
                hist.quantile(0.50),
                hist.quantile(0.99),
                s.max
            );
        }
        h.push_str("</table>\n");
    }
    h.push_str("</body></html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_respects_live_gate() {
        // Not live: notes are dropped.
        set_live(false);
        note_cell(CellNote {
            bench: "GATED".into(),
            scheme: "asap".into(),
            cache: "miss".into(),
            host_us: 1,
            sim_cycles: 2,
        });
        assert!(!render_html().contains("GATED"));

        set_live(true);
        note_cell(CellNote {
            bench: "q&lt".into(), // exercises escaping via '&'
            scheme: "asap".into(),
            cache: "mem".into(),
            host_us: 123,
            sim_cycles: 456,
        });
        let html = render_html();
        set_live(false);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("q&amp;lt"));
        assert!(html.contains("<td>123</td><td>456</td>"));
        assert!(html.contains("Host-phase profile"));
    }

    #[test]
    fn sweep_table_renders_and_respects_live_gate() {
        let point = |n: u64, crashed: bool| CrashPointOutcome {
            crash_after: n,
            crashed,
            uncommitted: 1,
            replayed: 2,
            restored_lines: 3,
            tx: 40 + n,
        };
        set_live(false);
        note_sweep(SweepNote {
            bench: "GATEDSWEEP".into(),
            scheme: "asap".into(),
            points: vec![point(5, true)],
        });
        assert!(!render_html().contains("GATEDSWEEP"));

        set_live(true);
        note_sweep(SweepNote {
            bench: "HM<1>".into(), // exercises escaping
            scheme: "asap".into(),
            points: vec![point(7, true), point(1_000_000, false)],
        });
        let html = render_html();
        set_live(false);
        assert!(html.contains("HM&lt;1&gt;"));
        assert!(html.contains("2 points, 1 crashed"));
        assert!(html.contains("<td>7</td><td>crashed</td>"));
        assert!(html.contains("<td>1000000</td><td>completed</td>"));
        sweeps().lock().unwrap().clear();
    }

    #[test]
    fn recent_queue_is_bounded() {
        set_live(true);
        for i in 0..(RECENT_CAP + 10) {
            note_cell(CellNote {
                bench: format!("B{i}"),
                scheme: "asap".into(),
                cache: "miss".into(),
                host_us: i as u64,
                sim_cycles: 0,
            });
        }
        set_live(false);
        let q = recent().lock().unwrap();
        assert_eq!(q.len(), RECENT_CAP);
        // Oldest were evicted.
        assert!(q.iter().all(|c| c.bench != "B0"));
    }
}
