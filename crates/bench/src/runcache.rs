//! Content-addressed memoization of simulation cells.
//!
//! Every cell in a figure grid is a pure function of its
//! [`WorkloadSpec`](asap_workloads::WorkloadSpec) and the simulator
//! binary, so a finished [`RunResult`] can be keyed by
//! [`WorkloadSpec::fingerprint`](asap_workloads::WorkloadSpec::fingerprint)
//! and reused — bit for bit — wherever the same cell appears again. Two
//! tiers:
//!
//! - **memory** — a process-global map deduplicating identical cells
//!   across the grids and figures of one invocation (e.g. a payload
//!   sweep re-running its 64B baseline, or `cargo bench` driving several
//!   figures that share cells);
//! - **disk** — a persistent store under
//!   `target/runcache/<build>/<fingerprint>.json`, surviving across
//!   invocations. Files are the lossless cell JSON of
//!   [`asap_workloads::resultjson`]; `<build>` is the fingerprint of the
//!   running executable ([`asap_sim::fingerprint::build_fingerprint`]),
//!   so a recompile — which may legitimately change results — starts a
//!   fresh store; sibling stores beyond a small working set (each bench
//!   target is its own binary) are pruned, oldest first.
//!
//! Configuration (see [`RunCacheConfig::from_env`]):
//!
//! - `ASAP_RUNCACHE` — `off`, `mem` (default), or `disk` (both tiers);
//! - `ASAP_RUNCACHE_DIR` — disk-store root (default `target/runcache`);
//! - `ASAP_RUNCACHE_CAP` — max files per build store (default 512);
//!   the oldest-by-mtime beyond the cap are evicted after each insert,
//!   and hits re-touch their file so hot cells survive.
//!
//! Correctness posture: a disk file that fails to parse is deleted and
//! treated as a miss; writes are temp-file-then-rename so a crashed or
//! concurrent run never leaves a partial file to poison later reads; and
//! a returned hit always has its `spec` replaced by the *requested* spec
//! (the fingerprint makes them equal, but the cache must never be able
//! to alter figure output). `tests/parallel_equivalence.rs` holds the
//! cached-equals-fresh claim artifact by artifact.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use asap_sim::fingerprint::{build_fingerprint, Fingerprint};
use asap_sim::obs::{self, events, metrics};
use asap_workloads::{resultjson, RunResult};

/// Which tiers a grid run consults, and the disk-store shape.
#[derive(Clone, Debug)]
pub struct RunCacheConfig {
    /// Consult/populate the in-process tier.
    pub mem: bool,
    /// Disk-store root (the per-build directory lives under it), or
    /// `None` to skip the disk tier.
    pub disk: Option<PathBuf>,
    /// Max result files per build store; oldest-by-mtime evicted beyond
    /// it.
    pub cap: usize,
}

/// Default `ASAP_RUNCACHE_CAP`: at ~2–40 KiB per cell JSON this bounds a
/// build store to a few MiB while covering every cell the figure suite
/// produces (well under 200 distinct cells per configuration).
pub const DEFAULT_CAP: usize = 512;

impl RunCacheConfig {
    /// Reads `ASAP_RUNCACHE` / `ASAP_RUNCACHE_DIR` / `ASAP_RUNCACHE_CAP`.
    /// Unknown `ASAP_RUNCACHE` values fall back to the `mem` default —
    /// consistent with the other harness knobs, a typo must not silently
    /// disable memoization *or* unexpectedly write to disk.
    pub fn from_env() -> Self {
        let mode = std::env::var("ASAP_RUNCACHE").unwrap_or_default();
        match mode.trim() {
            "off" => RunCacheConfig::off(),
            "disk" => RunCacheConfig {
                mem: true,
                disk: Some(disk_dir_from_env()),
                cap: cap_from_env(),
            },
            _ => RunCacheConfig {
                mem: true,
                disk: None,
                cap: cap_from_env(),
            },
        }
    }

    /// No caching at all: every cell simulates. The equivalence tests
    /// pin this so they keep comparing *real* runs.
    pub fn off() -> Self {
        RunCacheConfig {
            mem: false,
            disk: None,
            cap: DEFAULT_CAP,
        }
    }

    /// Disk tier only (no process-global state) — lets tests exercise
    /// the persistent store hermetically in a temp directory.
    pub fn disk_only(dir: impl Into<PathBuf>, cap: usize) -> Self {
        RunCacheConfig {
            mem: false,
            disk: Some(dir.into()),
            cap,
        }
    }

    /// Whether any tier is active.
    pub fn enabled(&self) -> bool {
        self.mem || self.disk.is_some()
    }
}

fn disk_dir_from_env() -> PathBuf {
    match std::env::var("ASAP_RUNCACHE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        // CARGO_MANIFEST_DIR of this crate is crates/bench.
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/runcache"),
    }
}

fn cap_from_env() -> usize {
    std::env::var("ASAP_RUNCACHE_CAP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CAP)
}

/// Process-cumulative cache traffic, printed by the grid runner and used
/// to tag wall-clock records `warm`/`cold`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Hits served by the in-process tier.
    pub mem_hits: u64,
    /// Hits served by the disk store.
    pub disk_hits: u64,
    /// Cells that had to simulate.
    pub misses: u64,
    /// Files evicted by the cap.
    pub evicted: u64,
    /// Bytes written to the disk store.
    pub bytes_written: u64,
    /// Bytes read back on disk hits.
    pub bytes_read: u64,
}

impl Counters {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

// The counters live in the process-global observability registry
// ([`asap_sim::obs::metrics`]) so one snapshot covers the cache, the
// worker pool, and the simulator's host-side structures alike; this
// module's [`counters`]/[`summary_line`] view is kept as the stable
// harness-facing API (and the stderr phrase CI greps for).
const MEM_HITS: &str = "runcache.mem_hits";
const DISK_HITS: &str = "runcache.disk_hits";
const MISSES: &str = "runcache.misses";
const EVICTED: &str = "runcache.evicted";
const BYTES_WRITTEN: &str = "runcache.bytes_written";
const BYTES_READ: &str = "runcache.bytes_read";
/// Grid cells served by copying another cell of the *same grid* with an
/// identical fingerprint (no tier consulted, no simulation).
const DEDUP_FANOUT: &str = "runcache.dedup_fanout";

/// A snapshot of the process-cumulative counters.
pub fn counters() -> Counters {
    Counters {
        mem_hits: metrics::counter_value(MEM_HITS),
        disk_hits: metrics::counter_value(DISK_HITS),
        misses: metrics::counter_value(MISSES),
        evicted: metrics::counter_value(EVICTED),
        bytes_written: metrics::counter_value(BYTES_WRITTEN),
        bytes_read: metrics::counter_value(BYTES_READ),
    }
}

/// Marks one intra-grid duplicate served by fingerprint fan-out (called
/// by the grid runner; kept out of [`Counters`] so the legacy summary
/// line stays stable).
pub fn note_dedup_fanout() {
    metrics::counter(DEDUP_FANOUT).inc();
}

/// The stderr summary line for a counter snapshot, e.g.
/// `runcache: 18 hits (9 mem, 9 disk), 0 misses, 0 evicted, 0B written,
/// 52813B read`. CI greps the second figure pass for `0 misses`, so the
/// phrase set here is load-bearing.
pub fn summary_line(c: &Counters) -> String {
    format!(
        "runcache: {} hits ({} mem, {} disk), {} misses, {} evicted, {}B written, {}B read",
        c.hits(),
        c.mem_hits,
        c.disk_hits,
        c.misses,
        c.evicted,
        c.bytes_written,
        c.bytes_read
    )
}

fn mem_tier() -> &'static Mutex<HashMap<Fingerprint, RunResult>> {
    static MEM: OnceLock<Mutex<HashMap<Fingerprint, RunResult>>> = OnceLock::new();
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The per-build store directory, or `None` when the executable cannot
/// be fingerprinted (then the disk tier silently degrades to off — a
/// cache keyed on an unknown binary would be unsound).
fn build_dir(root: &Path) -> Option<PathBuf> {
    Some(root.join(build_fingerprint()?.hex()))
}

/// Which tier served a cache hit — carried into the `cell_end` run
/// event so a stream consumer can tell warm cells from simulated ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitTier {
    /// Served by the in-process map.
    Mem,
    /// Served by (and promoted from) the disk store.
    Disk,
}

impl HitTier {
    /// The `cache` field value used in run events.
    pub fn label(self) -> &'static str {
        match self {
            HitTier::Mem => "mem",
            HitTier::Disk => "disk",
        }
    }
}

/// Looks `fp` up in the configured tiers. A disk hit is promoted into
/// the memory tier (when enabled) and its file re-touched so cap
/// eviction treats it as fresh. Misses are *not* counted here — only
/// cells the grid runner actually has to simulate count as misses, so
/// intra-grid duplicates never inflate the number.
pub fn lookup(fp: &Fingerprint, cfg: &RunCacheConfig) -> Option<(RunResult, HitTier)> {
    if cfg.mem {
        if let Some(r) = mem_tier().lock().unwrap().get(fp) {
            metrics::counter(MEM_HITS).inc();
            return Some((r.clone(), HitTier::Mem));
        }
    }
    let root = cfg.disk.as_deref()?;
    let dir = build_dir(root)?;
    let path = dir.join(format!("{}.json", fp.hex()));
    let text = std::fs::read_to_string(&path).ok()?;
    match resultjson::from_json(&text) {
        Ok(r) => {
            metrics::counter(DISK_HITS).inc();
            metrics::counter(BYTES_READ).add(text.len() as u64);
            touch(&path);
            if cfg.mem {
                mem_tier().lock().unwrap().insert(*fp, r.clone());
            }
            Some((r, HitTier::Disk))
        }
        Err(e) => {
            // A file this build wrote but cannot read back is corrupt
            // (torn writes are excluded by rename, so: bit rot or
            // tampering). Drop it and simulate.
            obs::warn!("runcache: dropping unreadable {}: {e}", path.display());
            let _ = std::fs::remove_file(&path);
            None
        }
    }
}

/// Marks the miss of one simulated cell (called by the grid runner once
/// per cell it sends to the worker pool).
pub fn note_miss() {
    metrics::counter(MISSES).inc();
}

/// Inserts a freshly simulated result into the configured tiers, then
/// enforces the disk cap. Disk-write failures only warn: memoization is
/// an accelerator, never a reason to fail a figure run.
pub fn insert(fp: &Fingerprint, result: &RunResult, cfg: &RunCacheConfig) {
    if cfg.mem {
        mem_tier().lock().unwrap().insert(*fp, result.clone());
    }
    let Some(root) = cfg.disk.as_deref() else {
        return;
    };
    let Some(dir) = build_dir(root) else { return };
    prune_stale_builds(root, &dir);
    let path = dir.join(format!("{}.json", fp.hex()));
    let body = resultjson::to_json(result);
    let res = std::fs::create_dir_all(&dir).and_then(|()| write_atomic(&path, &body));
    match res {
        Ok(()) => {
            metrics::counter(BYTES_WRITTEN).add(body.len() as u64);
            evict_over_cap(&dir, cfg.cap);
        }
        Err(e) => obs::warn!("runcache: could not write {}: {e}", path.display()),
    }
}

/// Same-directory temp-then-rename write (readers never see a partial
/// file; last writer wins for concurrent same-cell inserts, and both
/// write identical bytes anyway).
fn write_atomic(path: &Path, body: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Bumps a hit file's mtime so the LRU cap evicts cold cells first.
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Build stores kept under the root (newest by mtime, plus the live
/// one). Every bench target is its own binary with its own build
/// fingerprint, so one `cargo bench` sweep legitimately populates around
/// a dozen sibling stores — only stores beyond that working set (i.e.
/// from binaries that have since been rebuilt) are dead weight.
const MAX_BUILD_DIRS: usize = 16;

/// Deletes the oldest sibling build directories beyond
/// [`MAX_BUILD_DIRS`]. Once per process: the scan is cheap but pointless
/// to repeat, and a live store never grows new stale siblings mid-run.
fn prune_stale_builds(root: &Path, live: &Path) {
    static PRUNED: AtomicBool = AtomicBool::new(false);
    if PRUNED.swap(true, Ordering::Relaxed) {
        return;
    }
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut dirs: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let p = e.path();
            if !p.is_dir() || p == live {
                return None;
            }
            let mtime = e.metadata().ok()?.modified().ok()?;
            Some((mtime, p))
        })
        .collect();
    // `live` counts against the budget whether or not it exists yet.
    if dirs.len() < MAX_BUILD_DIRS {
        return;
    }
    dirs.sort();
    let excess = dirs.len() + 1 - MAX_BUILD_DIRS;
    for (_, p) in dirs.into_iter().take(excess) {
        match std::fs::remove_dir_all(&p) {
            Ok(()) => obs::note!("runcache: pruned stale build store {}", p.display()),
            Err(e) => obs::warn!("runcache: could not prune {}: {e}", p.display()),
        }
    }
}

/// Removes the oldest-by-mtime `.json` files beyond `cap`. Ties (same
/// mtime granularity) break by filename so eviction is deterministic.
fn evict_over_cap(dir: &Path, cap: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let p = e.path();
            if p.extension()? != "json" {
                return None;
            }
            let mtime = e.metadata().ok()?.modified().ok()?;
            Some((mtime, p))
        })
        .collect();
    if files.len() <= cap {
        return;
    }
    files.sort();
    let excess = files.len() - cap;
    for (_, p) in files.into_iter().take(excess) {
        if std::fs::remove_file(&p).is_ok() {
            metrics::counter(EVICTED).inc();
            if events::enabled() {
                let fp = p.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                events::Event::new("cache_evict").field_str("fp", fp).emit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::scheme::SchemeKind;
    use asap_workloads::{run, BenchId, WorkloadSpec};

    fn temp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("asap-runcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn disk_tier_round_trips_and_caps() {
        let root = temp_dir("roundtrip");
        let cfg = RunCacheConfig::disk_only(&root, 2);
        let specs: Vec<WorkloadSpec> = [3u64, 5, 7]
            .into_iter()
            .map(|seed| {
                WorkloadSpec::small(BenchId::Q, SchemeKind::Asap)
                    .with_ops(8)
                    .with_seed(seed)
            })
            .collect();
        // Miss on an empty store.
        assert!(lookup(&specs[0].fingerprint(), &cfg).is_none());
        let results: Vec<RunResult> = specs.iter().map(run).collect();
        for (s, r) in specs.iter().zip(&results) {
            insert(&s.fingerprint(), r, &cfg);
        }
        // Cap 2: the oldest of the three files was evicted.
        let dir = build_dir(&root).expect("build fingerprint available");
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 2);
        assert!(lookup(&specs[0].fingerprint(), &cfg).is_none());
        // Survivors round-trip exactly.
        for (s, r) in specs.iter().zip(&results).skip(1) {
            let (hit, tier) = lookup(&s.fingerprint(), &cfg).expect("hit");
            assert_eq!(tier, HitTier::Disk);
            assert!(resultjson::results_identical(&hit, r));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_disk_entries_become_misses_and_are_dropped() {
        let root = temp_dir("corrupt");
        let cfg = RunCacheConfig::disk_only(&root, 16);
        let spec = WorkloadSpec::small(BenchId::Hm, SchemeKind::SwUndo).with_ops(6);
        insert(&spec.fingerprint(), &run(&spec), &cfg);
        let dir = build_dir(&root).unwrap();
        let path = dir.join(format!("{}.json", spec.fingerprint().hex()));
        std::fs::write(&path, "{not json").unwrap();
        assert!(lookup(&spec.fingerprint(), &cfg).is_none());
        assert!(!path.exists(), "corrupt file is removed");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn summary_line_shape() {
        let c = Counters {
            mem_hits: 2,
            disk_hits: 1,
            misses: 4,
            evicted: 1,
            bytes_written: 10,
            bytes_read: 20,
        };
        assert_eq!(
            summary_line(&c),
            "runcache: 3 hits (2 mem, 1 disk), 4 misses, 1 evicted, 10B written, 20B read"
        );
    }

    #[test]
    fn env_defaults_to_mem_tier() {
        if std::env::var("ASAP_RUNCACHE").is_err() {
            let cfg = RunCacheConfig::from_env();
            assert!(cfg.mem);
            assert!(cfg.disk.is_none());
            assert_eq!(cfg.cap, DEFAULT_CAP);
        }
        assert!(!RunCacheConfig::off().enabled());
        assert!(RunCacheConfig::disk_only("/tmp/x", 4).enabled());
    }
}
