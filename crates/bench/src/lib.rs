//! Shared harness for the figure-regeneration benches.
//!
//! Every table and figure in the paper's evaluation (§7) has a bench
//! target under `benches/` that prints the same rows/series the paper
//! plots. Run them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig7_speedup`.
//!
//! Scale knobs (environment):
//!
//! - `ASAP_OPS` — transactions per thread (default 200);
//! - `ASAP_THREADS` — worker threads (default 4);
//! - `ASAP_JOBS` — host worker threads running simulations in parallel
//!   (default: available parallelism; `1` forces the serial path);
//! - `ASAP_BENCHES` — comma-separated benchmark labels to restrict to;
//! - `ASAP_WALLCLOCK` — path of the host wall-clock report
//!   (default `BENCH_WALLCLOCK.json` in the repo root; empty disables);
//! - `ASAP_TRACE` / `ASAP_TRACE_CAP` — capture an event trace per run
//!   (see the `trace_report` example and DESIGN.md's Observability
//!   section);
//! - `ASAP_TELEMETRY` / `ASAP_TELEMETRY_PERIOD` — sample occupancy
//!   time series and the region-lifecycle log in virtual time (see
//!   EXPERIMENTS.md §Telemetry);
//! - `ASAP_TELEMETRY_OUT` — directory for the per-figure merged
//!   telemetry JSON (default `target/telemetry/`; empty disables);
//! - `ASAP_RUNCACHE` / `ASAP_RUNCACHE_DIR` / `ASAP_RUNCACHE_CAP` —
//!   content-addressed result memoization (`off`/`mem`/`disk`, default
//!   `mem`; see [`runcache`]);
//! - `ASAP_PROGRESS` — live status line on stderr (`1`/`on` enable);
//! - `ASAP_CRASH_SWEEP` — crash-point count for the `crash_sweep`
//!   example, which drives [`run_crash_sweep`] (shared-prefix
//!   copy-on-write forks, bit-identical to legacy `crash_after` cells);
//! - `ASAP_SWEEP_JOBS` — fork-dispatch worker threads for crash sweeps
//!   (default 1; snapshots are `Send`, so forks run on a scoped pool and
//!   merge back in point order — output is identical at any value);
//! - `ASAP_SNAP_BUDGET` — most spine snapshots a sweep keeps resident
//!   (default 64; over budget, every other snapshot is evicted and the
//!   cadence doubles);
//! - `ASAP_HTTP` — address for the live observability HTTP server
//!   (e.g. `127.0.0.1:0`), started per grid run and stopped at grid
//!   end: `/metrics`, `/metrics.json`, `/events`, `/progress`,
//!   `/report` (see DESIGN.md §13). Purely an observer — figure stdout
//!   is byte-identical with the server on or off.
//!
//! Unrecognized `ASAP_`-prefixed variables draw a warning on stderr at
//! grid startup (see [`asap_sim::warn_unknown_asap_env`]) — a typo'd
//! knob should never fail silently.
//!
//! Every figure is a grid of *independent deterministic simulations* — one
//! per `(bench × scheme × payload)` cell — so the harness runs them on a
//! scoped-thread worker pool ([`run_grid`]) and hands results back in spec
//! order: the printed tables are byte-identical for any `ASAP_JOBS`.

#![warn(missing_docs)]

mod progress;
mod report;
pub mod runcache;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use asap_core::machine::RunOutcome;
use asap_core::scheme::SchemeKind;
use asap_sim::obs::{self, events, metrics, phase};
use asap_sim::{Fingerprint, TelemetrySettings, TraceSettings};
use asap_workloads::{
    run, run_sweep_with, BenchId, CrashPointOutcome, RunResult, SweepConfig, SweepResult,
    WorkloadSpec,
};

use progress::Progress;
use runcache::RunCacheConfig;

/// Transactions per thread, from `ASAP_OPS` (default 200).
pub fn ops() -> u64 {
    std::env::var("ASAP_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Worker threads, from `ASAP_THREADS` (default 4).
pub fn threads() -> u32 {
    std::env::var("ASAP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The benchmark set, optionally restricted by `ASAP_BENCHES`.
pub fn benches(all: &[BenchId]) -> Vec<BenchId> {
    match std::env::var("ASAP_BENCHES") {
        Ok(list) => {
            let want: Vec<String> = list.split(',').map(|s| s.trim().to_uppercase()).collect();
            all.iter()
                .copied()
                .filter(|b| want.contains(&b.label().to_string()))
                .collect()
        }
        Err(_) => all.to_vec(),
    }
}

/// Host worker threads for [`run_grid`], from `ASAP_JOBS` (default: the
/// machine's available parallelism; minimum 1).
pub fn jobs() -> usize {
    match std::env::var("ASAP_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Fork-dispatch worker threads for crash sweeps, from `ASAP_SWEEP_JOBS`
/// (default 1 — the sweep's own parallelism is opt-in, separate from the
/// grid pool's [`jobs`]; minimum 1). Sweep output is bit-identical at any
/// value (`tests/parallel_equivalence.rs` and the sweep proptests hold
/// the claim).
pub fn sweep_jobs() -> usize {
    std::env::var("ASAP_SWEEP_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Spine snapshot budget for crash sweeps, from `ASAP_SNAP_BUDGET`
/// (default 64; 0 = unbounded). Bounds sweep memory: over budget, every
/// other spine snapshot is evicted and the cadence doubles.
pub fn snap_budget() -> usize {
    std::env::var("ASAP_SNAP_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(64)
}

/// Runs every spec in `specs` and returns the results in the same order,
/// using [`jobs`] host worker threads and the environment-configured
/// result cache ([`RunCacheConfig::from_env`]).
///
/// Each cell is an independent, deterministic, single-threaded (host-side)
/// simulation, so neither parallel execution nor memoization can change
/// any result — only the wall clock. `tests/parallel_equivalence.rs` in
/// the workspace root holds the harness to both claims.
pub fn run_grid(specs: &[WorkloadSpec]) -> Vec<RunResult> {
    run_grid_jobs(specs, jobs())
}

/// [`run_grid`] with an explicit worker count (`jobs <= 1` runs inline
/// without spawning).
pub fn run_grid_jobs(specs: &[WorkloadSpec], jobs: usize) -> Vec<RunResult> {
    run_grid_with(specs, jobs, &RunCacheConfig::from_env())
}

/// [`run_grid`] with an explicit worker count *and* cache configuration.
/// Cache lookups happen up front — by content fingerprint, so duplicate
/// cells within one grid collapse to a single simulation too — and only
/// the missing cells go to the worker pool; results come back in spec
/// order regardless, so stdout is byte-identical whatever hits.
///
/// Observability (all off the figure's stdout): when `ASAP_EVENTS` is
/// set, the grid emits `grid_start`, one `cell_start`/`cell_end` pair
/// per cell (ordered by completion, keyed by fingerprint), and
/// `grid_end` records; `ASAP_PROGRESS=1` draws a live status line on
/// stderr; host time is attributed to the [`phase`] profiler either way.
pub fn run_grid_with(
    specs: &[WorkloadSpec],
    jobs: usize,
    cache: &RunCacheConfig,
) -> Vec<RunResult> {
    asap_sim::warn_unknown_asap_env();
    // Start before the first emit so grid_start lands in the hub backlog
    // and reaches /events subscribers that connect mid-run.
    let server = start_obs_server();
    let events_on = events::enabled();
    let progress = Progress::from_env(specs.len());
    let t0 = Instant::now();
    if events_on {
        events::Event::new("grid_start")
            .field_str("schema", events::SCHEMA)
            .field_u64("cells", specs.len() as u64)
            .field_u64("jobs", jobs as u64)
            .field_str("cache", if cache.enabled() { "on" } else { "off" })
            .emit();
    }
    // Fingerprints key both memoization and the event stream; with
    // neither consumer active, skip hashing entirely.
    let fps: Option<Vec<Fingerprint>> = (cache.enabled() || events_on).then(|| {
        let _t = phase::scope(phase::Phase::Fingerprint);
        specs.iter().map(WorkloadSpec::fingerprint).collect()
    });
    let results = if cache.enabled() {
        grid_with_cache(
            specs,
            jobs,
            cache,
            fps.as_deref().expect("cache implies fps"),
            &progress,
        )
    } else {
        pool_run(specs, jobs, fps.as_deref(), &progress)
    };
    progress.finish();
    if events_on {
        let c = runcache::counters();
        events::Event::new("grid_end")
            .field_u64("cells", specs.len() as u64)
            .field_u64("host_us", t0.elapsed().as_micros() as u64)
            .field_u64("cache_hits", c.hits())
            .field_u64("cache_misses", c.misses)
            .emit();
    }
    if cache.enabled() {
        // Cumulative for the process (stderr, like the wall-clock note —
        // the figure's stdout must not depend on cache state).
        obs::note!("{}", runcache::summary_line(&runcache::counters()));
    }
    if let Some(server) = server {
        // Graceful: streams drain their pending batches, see the hub
        // close, and every connection thread is joined before we return.
        report::set_live(false);
        server.shutdown();
    }
    results
}

/// The bench-side routes `run_grid` registers on the `ASAP_HTTP` server
/// on top of the built-ins (`/metrics`, `/metrics.json`, `/events`):
/// `/progress` (live grid progress JSON) and `/report` (the HTML run
/// report regenerated from current state). Public so embedders — tests
/// today, the simulation-as-a-service daemon the ROADMAP aims at — can
/// mount the same endpoints on a server they manage themselves.
pub fn obs_routes() -> Vec<(String, obs::http::Handler)> {
    vec![
        (
            "/progress".to_string(),
            Box::new(|| obs::http::Response::json(progress::progress_json())),
        ),
        (
            "/report".to_string(),
            Box::new(|| obs::http::Response::html(report::render_html())),
        ),
    ]
}

/// Starts the `ASAP_HTTP` observability server for one grid run, with
/// the [`obs_routes`] registered on top of the built-ins. A bind
/// failure warns and returns `None` — the observer must never fail the
/// run it observes.
fn start_obs_server() -> Option<obs::http::Server> {
    let addr = std::env::var("ASAP_HTTP").ok()?;
    let addr = addr.trim().to_string();
    if addr.is_empty() {
        return None;
    }
    match obs::http::Server::start(&addr, obs_routes()) {
        Ok(server) => {
            // Load-bearing note: ci.sh discovers the ephemeral port of
            // `ASAP_HTTP=127.0.0.1:0` runs by grepping this line.
            obs::note!("obs: http server listening on http://{}", server.addr());
            report::set_live(true);
            Some(server)
        }
        Err(e) => {
            obs::warn!("obs: could not bind ASAP_HTTP={addr}: {e}; running without server");
            None
        }
    }
}

/// The cached path of [`run_grid_with`]: probe the tiers, simulate the
/// misses, fan duplicates out from their first occurrence.
fn grid_with_cache(
    specs: &[WorkloadSpec],
    jobs: usize,
    cache: &RunCacheConfig,
    fps: &[Fingerprint],
    progress: &Progress,
) -> Vec<RunResult> {
    let mut results: Vec<Option<RunResult>> = vec![None; specs.len()];
    // First index of each distinct fingerprint; later duplicates are
    // filled by fan-out below instead of consulting the tiers (or the
    // pool) again.
    let mut first: HashMap<Fingerprint, usize> = HashMap::new();
    let mut to_run: Vec<usize> = Vec::new();
    {
        let _t = phase::scope(phase::Phase::CacheProbe);
        for (i, fp) in fps.iter().enumerate() {
            if first.contains_key(fp) {
                continue;
            }
            first.insert(*fp, i);
            let probe_t0 = Instant::now();
            match runcache::lookup(fp, cache) {
                Some((mut r, tier)) => {
                    // Fingerprint equality makes the cached spec equal to
                    // the requested one; overwrite anyway so a cache can
                    // never alter what a figure prints about its own
                    // inputs.
                    r.spec = specs[i];
                    emit_cell_start(&specs[i], fp);
                    emit_cell_end(
                        &specs[i],
                        fp,
                        tier.label(),
                        &r,
                        probe_t0.elapsed().as_micros() as u64,
                    );
                    results[i] = Some(r);
                    progress.tick(true);
                }
                None => {
                    runcache::note_miss();
                    to_run.push(i);
                }
            }
        }
    }
    let missing: Vec<WorkloadSpec> = to_run.iter().map(|&i| specs[i]).collect();
    let missing_fps: Vec<Fingerprint> = to_run.iter().map(|&i| fps[i]).collect();
    for (&i, r) in to_run
        .iter()
        .zip(pool_run(&missing, jobs, Some(&missing_fps), progress))
    {
        runcache::insert(&fps[i], &r, cache);
        results[i] = Some(r);
    }
    for i in 0..specs.len() {
        if results[i].is_none() {
            let mut r = results[first[&fps[i]]].clone().expect("representative ran");
            r.spec = specs[i];
            runcache::note_dedup_fanout();
            emit_cell_start(&specs[i], &fps[i]);
            emit_cell_end(&specs[i], &fps[i], "dedup", &r, 0);
            progress.tick(true);
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every cell filled"))
        .collect()
}

/// Runs a copy-on-write crash-point sweep for `spec` under the
/// environment-configured result cache ([`RunCacheConfig::from_env`]).
///
/// The sweep itself ([`asap_workloads::run_sweep`]) executes the shared
/// prefix once and forks each crash point from the nearest machine
/// snapshot; this wrapper adds the memoization layer: every fork is keyed
/// by the fingerprint of `spec.with_crash_after(point)` — the *same* key
/// an ordinary [`run_grid`] cell for that spec would use, because the
/// fork's result is byte-identical to the legacy re-run (enforced by the
/// equivalence suite). Sweeps therefore dedupe against prior sweeps *and*
/// against ordinary crash-cell grids across invocations. The baseline is
/// cached under the unarmed spec's fingerprint in its plain-run form
/// (crash-point summaries stripped), interchangeable with any non-sweep
/// cell of the same spec.
pub fn run_crash_sweep(spec: &WorkloadSpec, points: &[u64], snap_every: u64) -> SweepResult {
    run_crash_sweep_with(spec, points, snap_every, &RunCacheConfig::from_env())
}

/// [`run_crash_sweep`] with an explicit cache configuration. Emits the
/// same observability records as a grid run — `grid_start`/`grid_end`
/// brackets, one `cell_start`/`cell_end` pair per crash point plus one
/// for the baseline, progress ticks — and feeds the live report's
/// crash-sweep table when the `ASAP_HTTP` server is up. Stdout is
/// untouched; results come back in point order whatever hits.
pub fn run_crash_sweep_with(
    spec: &WorkloadSpec,
    points: &[u64],
    snap_every: u64,
    cache: &RunCacheConfig,
) -> SweepResult {
    asap_sim::warn_unknown_asap_env();
    let server = start_obs_server();
    let events_on = events::enabled();
    let progress = Progress::from_env(points.len() + 1);
    let t0 = Instant::now();
    if events_on {
        events::Event::new("grid_start")
            .field_str("schema", events::SCHEMA)
            .field_u64("cells", points.len() as u64 + 1)
            .field_u64("jobs", sweep_jobs() as u64)
            .field_str("cache", if cache.enabled() { "on" } else { "off" })
            .emit();
    }
    let fork_specs: Vec<WorkloadSpec> = points.iter().map(|&n| spec.with_crash_after(n)).collect();
    let want_fps = cache.enabled() || events_on;
    let fps: Option<Vec<Fingerprint>> = want_fps.then(|| {
        let _t = phase::scope(phase::Phase::Fingerprint);
        fork_specs.iter().map(WorkloadSpec::fingerprint).collect()
    });
    let base_fp = want_fps.then(|| spec.fingerprint());

    let mut forks: Vec<Option<RunResult>> = vec![None; points.len()];
    let mut baseline: Option<RunResult> = None;
    let mut first: HashMap<Fingerprint, usize> = HashMap::new();
    let mut to_run: Vec<usize> = Vec::new();
    if cache.enabled() {
        let fps = fps.as_deref().expect("cache implies fps");
        let bfp = base_fp.as_ref().expect("cache implies fps");
        let _t = phase::scope(phase::Phase::CacheProbe);
        let probe_t0 = Instant::now();
        match runcache::lookup(bfp, cache) {
            Some((mut r, tier)) => {
                r.spec = *spec;
                emit_cell_start(spec, bfp);
                emit_cell_end(
                    spec,
                    bfp,
                    tier.label(),
                    &r,
                    probe_t0.elapsed().as_micros() as u64,
                );
                baseline = Some(r);
                progress.tick(true);
            }
            None => runcache::note_miss(),
        }
        for (i, fp) in fps.iter().enumerate() {
            if first.contains_key(fp) {
                continue;
            }
            first.insert(*fp, i);
            let probe_t0 = Instant::now();
            match runcache::lookup(fp, cache) {
                Some((mut r, tier)) => {
                    r.spec = fork_specs[i];
                    emit_cell_start(&fork_specs[i], fp);
                    emit_cell_end(
                        &fork_specs[i],
                        fp,
                        tier.label(),
                        &r,
                        probe_t0.elapsed().as_micros() as u64,
                    );
                    forks[i] = Some(r);
                    progress.tick(true);
                }
                None => {
                    runcache::note_miss();
                    to_run.push(i);
                }
            }
        }
    } else {
        to_run = (0..points.len()).collect();
    }

    let mut prefix_writes = 0;
    let mut replayed_writes = 0;
    if baseline.is_none() || !to_run.is_empty() {
        // One sweep covers the baseline and every missing point: the
        // prefix has to be executed to build the snapshots anyway, and
        // the baseline's completion falls out of it for free.
        let missing: Vec<u64> = to_run.iter().map(|&i| points[i]).collect();
        if baseline.is_none() {
            if let Some(bfp) = &base_fp {
                emit_cell_start(spec, bfp);
            }
        }
        for &i in &to_run {
            if let Some(fps) = &fps {
                emit_cell_start(&fork_specs[i], &fps[i]);
            }
        }
        let sim_t0 = Instant::now();
        let sweep = {
            let _t = phase::scope(phase::Phase::Simulate);
            // Tree layout + env-configured fork pool: bit-identical to
            // the serial flat sweep, only faster and memory-bounded.
            let cfg = SweepConfig::tree(snap_every)
                .with_budget(snap_budget())
                .with_jobs(sweep_jobs());
            run_sweep_with(spec, &missing, &cfg)
        };
        prefix_writes = sweep.prefix_writes;
        replayed_writes = sweep.replayed_writes;
        // Host time split evenly across the cells the sweep served —
        // the prefix is shared, so no per-cell attribution is exact.
        let per_us = sim_t0.elapsed().as_micros() as u64 / (to_run.len() as u64 + 1);
        for (&i, r) in to_run.iter().zip(sweep.forks) {
            if let Some(fps) = &fps {
                emit_cell_end(&fork_specs[i], &fps[i], "miss", &r, per_us);
                if cache.enabled() {
                    runcache::insert(&fps[i], &r, cache);
                }
            }
            forks[i] = Some(r);
            progress.tick(false);
        }
        if baseline.is_none() {
            let mut b = sweep.baseline;
            // Cache the plain-run form: a sweep baseline minus its
            // crash-point summaries is byte-identical to an ordinary run
            // of the unarmed spec, so the entry is interchangeable with
            // (and dedupes against) non-sweep cells. The summaries are
            // rebuilt below from the assembled forks either way.
            b.crash_points.clear();
            if let Some(bfp) = &base_fp {
                emit_cell_end(spec, bfp, "miss", &b, per_us);
                if cache.enabled() {
                    runcache::insert(bfp, &b, cache);
                }
            }
            baseline = Some(b);
            progress.tick(false);
        }
    }

    // Duplicate points fan out from their first occurrence.
    for i in 0..points.len() {
        if forks[i].is_none() {
            let fps = fps.as_deref().expect("dedup implies fps");
            let mut r = forks[first[&fps[i]]].clone().expect("representative ran");
            r.spec = fork_specs[i];
            runcache::note_dedup_fanout();
            emit_cell_start(&fork_specs[i], &fps[i]);
            emit_cell_end(&fork_specs[i], &fps[i], "dedup", &r, 0);
            progress.tick(true);
            forks[i] = Some(r);
        }
    }

    let forks: Vec<RunResult> = forks
        .into_iter()
        .map(|r| r.expect("every point filled"))
        .collect();
    let mut baseline = baseline.expect("baseline filled");
    // Rebuild the summary over *all* requested points (cache hits
    // included) exactly as the driver derives it, so a fully-warm sweep
    // reports the same outcomes as a cold one.
    baseline.crash_points = points
        .iter()
        .zip(&forks)
        .map(|(&n, r)| CrashPointOutcome {
            crash_after: n,
            crashed: r.outcome == RunOutcome::Crashed,
            uncommitted: r
                .recovery
                .as_ref()
                .map_or(0, |x| x.uncommitted.len() as u64),
            replayed: r.recovery.as_ref().map_or(0, |x| x.replayed.len() as u64),
            restored_lines: r.recovery.as_ref().map_or(0, |x| x.restored_lines),
            tx: r.tx,
        })
        .collect();
    if report::is_live() {
        report::note_sweep(report::SweepNote {
            bench: spec.bench.label().to_string(),
            scheme: spec.scheme.name().to_string(),
            points: baseline.crash_points.clone(),
        });
    }
    progress.finish();
    if events_on {
        let c = runcache::counters();
        events::Event::new("grid_end")
            .field_u64("cells", points.len() as u64 + 1)
            .field_u64("host_us", t0.elapsed().as_micros() as u64)
            .field_u64("cache_hits", c.hits())
            .field_u64("cache_misses", c.misses)
            .emit();
    }
    if cache.enabled() {
        obs::note!("{}", runcache::summary_line(&runcache::counters()));
    }
    if let Some(server) = server {
        report::set_live(false);
        server.shutdown();
    }
    // `prefix_writes` and `replayed_writes` stay 0 for a fully-warm
    // sweep: the prefix never re-executed, so there is nothing to
    // re-measure (and nothing was replayed).
    SweepResult {
        baseline,
        forks,
        prefix_writes,
        replayed_writes,
    }
}

/// The raw worker pool: simulates every spec, no memoization.
/// `fps` is present whenever the event stream is on (the grid runner
/// computes fingerprints for either consumer), so cell records can be
/// keyed by content.
fn pool_run(
    specs: &[WorkloadSpec],
    jobs: usize,
    fps: Option<&[Fingerprint]>,
    progress: &Progress,
) -> Vec<RunResult> {
    if jobs <= 1 || specs.len() <= 1 {
        return (0..specs.len())
            .map(|i| run_cell(i, specs, fps, progress, 0))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let next = &next;
        let slots = &slots;
        for w in 0..jobs.min(specs.len()) {
            scope.spawn(move || loop {
                // Self-scheduling work queue: cells vary widely in cost
                // (2KB payloads are ~10x 64B cells), so static chunking
                // would leave workers idle.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(run_cell(i, specs, fps, progress, w));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every cell ran"))
        .collect()
}

/// Simulates one cell on worker `w`, bracketing it with cell events and
/// accounting host time to the Simulate phase and the worker's registry
/// counters.
fn run_cell(
    i: usize,
    specs: &[WorkloadSpec],
    fps: Option<&[Fingerprint]>,
    progress: &Progress,
    w: usize,
) -> RunResult {
    let spec = &specs[i];
    let fp = fps.map(|f| &f[i]);
    if let Some(fp) = fp {
        emit_cell_start(spec, fp);
    }
    let t0 = Instant::now();
    let r = {
        let _t = phase::scope(phase::Phase::Simulate);
        run(spec)
    };
    let host_us = t0.elapsed().as_micros() as u64;
    if let Some(fp) = fp {
        emit_cell_end(spec, fp, "miss", &r, host_us);
    }
    metrics::counter(&format!("pool.worker{w}.cells")).inc();
    metrics::counter(&format!("pool.worker{w}.busy_us")).add(host_us);
    progress.tick(false);
    r
}

/// Starts a cell record carrying the cell's identity fields.
fn cell_record(ev: &str, spec: &WorkloadSpec, fp: &Fingerprint) -> events::Event {
    events::Event::new(ev)
        .field_str("fp", &fp.hex())
        .field_str("bench", spec.bench.label())
        .field_str("scheme", spec.scheme.name())
}

/// Emits `cell_start` (no-op with the stream off).
fn emit_cell_start(spec: &WorkloadSpec, fp: &Fingerprint) {
    if events::enabled() {
        cell_record("cell_start", spec, fp).emit();
    }
}

/// Emits `cell_end`. `cache` says how the cell was served: `"miss"`
/// (simulated), `"mem"`/`"disk"` (tier hit), or `"dedup"` (intra-grid
/// fan-out copy).
fn emit_cell_end(spec: &WorkloadSpec, fp: &Fingerprint, cache: &str, r: &RunResult, host_us: u64) {
    if report::is_live() {
        report::note_cell(report::CellNote {
            bench: spec.bench.label().to_string(),
            scheme: spec.scheme.name().to_string(),
            cache: cache.to_string(),
            host_us,
            sim_cycles: r.exec_cycles,
        });
    }
    if !events::enabled() {
        return;
    }
    let outcome = match r.outcome {
        RunOutcome::Completed => "completed",
        RunOutcome::Crashed => "crashed",
    };
    cell_record("cell_end", spec, fp)
        .field_str("outcome", outcome)
        .field_str("cache", cache)
        .field_u64("host_us", host_us)
        .field_u64("sim_cycles", r.exec_cycles)
        .emit();
}

/// Sums a counter across results (used by the wall-clock report).
fn total(results: &[&[RunResult]], f: impl Fn(&RunResult) -> u64) -> u64 {
    results.iter().flat_map(|g| g.iter()).map(&f).sum()
}

/// Appends one record for `figure` to the wall-clock trajectory file
/// (`BENCH_WALLCLOCK.json`, override with `ASAP_WALLCLOCK`; set it empty to
/// disable). The file is a JSON array of records:
/// `{figure, host_seconds, jobs, cells, cache, sim_cycles, pm_writes,
/// phases, unix_time}` — host seconds move with harness work; simulated
/// cycles and traffic must not, which is what makes the trajectory useful
/// to future perf PRs. `cache` is `"warm"` when any run-cache hit served
/// part of this process (so its host seconds measure the memoized path,
/// not the simulator) and `"cold"` otherwise; perf comparisons like the
/// `ASAP_PERF_GATE` check in `ci.sh` must skip warm records. `phases` is
/// the host-phase profile *taken* at write time
/// ([`phase::take_snapshot_json`]): each record owns the interval since
/// the previous record, so back-to-back emits in one process (e.g.
/// `crash_sweep` then `crash_sweep_legacy`) never repeat each other's
/// `simulate_us`/`cells_timed`.
///
/// The note confirming the write goes to *stderr*: stdout stays
/// byte-identical across `ASAP_JOBS` settings and host speeds.
pub fn emit_wallclock(figure: &str, elapsed: Duration, grids: &[&[RunResult]]) {
    emit_wallclock_env(figure, elapsed, grids, None);
}

/// [`emit_wallclock`] for crash sweeps: the record additionally carries
/// `crash_points` (how many points the sweep covered) and
/// `points_per_sec` (that count over the host seconds) — the sweep
/// throughput the `ASAP_PERF_GATE` comparison in `ci.sh` tracks.
pub fn emit_wallclock_sweep(
    figure: &str,
    elapsed: Duration,
    grids: &[&[RunResult]],
    crash_points: u64,
) {
    emit_wallclock_env(figure, elapsed, grids, Some(crash_points));
}

fn emit_wallclock_env(
    figure: &str,
    elapsed: Duration,
    grids: &[&[RunResult]],
    crash_points: Option<u64>,
) {
    let path = match std::env::var("ASAP_WALLCLOCK") {
        Ok(p) if p.is_empty() => return,
        Ok(p) => std::path::PathBuf::from(p),
        // CARGO_MANIFEST_DIR of this crate is crates/bench.
        Err(_) => {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_WALLCLOCK.json")
        }
    };
    if let Err(e) = emit_wallclock_record(&path, figure, elapsed, grids, crash_points) {
        obs::warn!("wallclock: could not write {}: {e}", path.display());
    }
    emit_telemetry(figure, grids);
}

/// The write behind [`emit_wallclock`], with an explicit path so tests
/// can aim it at a temp (or unwritable) location. The stderr note and
/// the `wallclock_written` event fire only after the atomic rename has
/// returned `Ok` — a failed write must never claim the record landed.
pub fn emit_wallclock_to(
    path: &std::path::Path,
    figure: &str,
    elapsed: Duration,
    grids: &[&[RunResult]],
) -> std::io::Result<()> {
    emit_wallclock_record(path, figure, elapsed, grids, None)
}

/// [`emit_wallclock_to`] with the optional sweep-throughput fields.
pub fn emit_wallclock_record(
    path: &std::path::Path,
    figure: &str,
    elapsed: Duration,
    grids: &[&[RunResult]],
    crash_points: Option<u64>,
) -> std::io::Result<()> {
    let _t = phase::scope(phase::Phase::Export);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let cache_tag = if runcache::counters().hits() > 0 {
        "warm"
    } else {
        "cold"
    };
    let sweep_fields = crash_points.map_or(String::new(), |n| {
        format!(
            "\"crash_points\":{n},\"points_per_sec\":{:.1},",
            n as f64 / elapsed.as_secs_f64().max(1e-9)
        )
    });
    let record = format!(
        "{{\"figure\":\"{}\",\"host_seconds\":{:.3},\"jobs\":{},\"cells\":{},\
         \"cache\":\"{}\",\"sim_cycles\":{},\"pm_writes\":{},{}\"phases\":{},\
         \"unix_time\":{}}}",
        figure,
        elapsed.as_secs_f64(),
        jobs(),
        grids.iter().map(|g| g.len()).sum::<usize>(),
        cache_tag,
        total(grids, |r| r.exec_cycles),
        total(grids, |r| r.pm_writes),
        sweep_fields,
        phase::take_snapshot_json(),
        unix_time,
    );
    // The file is a JSON array; append the record so repeated figure runs
    // accumulate a trajectory, keeping only the newest
    // [`MAX_WALLCLOCK_ENTRIES`] records per figure (prior records are kept
    // verbatim — only membership changes, never formatting).
    let mut records: Vec<String> = std::fs::read_to_string(path)
        .map(|prev| extract_json_objects(&prev))
        .unwrap_or_default();
    records.push(record);
    let dropped = cap_trajectory(&mut records, figure);
    let body = format!("[\n  {}\n]\n", records.join(",\n  "));
    // Write-temp-then-rename: figures may run concurrently (or be
    // interrupted), and a half-written trajectory file would poison every
    // later append. `rename` within one directory is atomic on POSIX.
    write_atomic(path, &body)?;
    if dropped > 0 {
        obs::note!(
            "wallclock: {figure} trajectory capped at {MAX_WALLCLOCK_ENTRIES} \
             entries ({dropped} oldest dropped)"
        );
    }
    obs::note!(
        "wallclock: {figure} {:.3}s ({} jobs) -> {}",
        elapsed.as_secs_f64(),
        jobs(),
        path.display()
    );
    if events::enabled() {
        events::Event::new("wallclock_written")
            .field_str("figure", figure)
            .field_f64("host_seconds", elapsed.as_secs_f64())
            .field_str("path", &path.display().to_string())
            .emit();
    }
    Ok(())
}

/// Newest records kept per figure in the wall-clock trajectory file; the
/// oldest beyond this are dropped on append (noted on stderr).
const MAX_WALLCLOCK_ENTRIES: usize = 64;

/// Extracts the top-level `{…}` objects of a JSON array as verbatim text
/// slices. Brace-depth counting copes with nested objects (the `phases`
/// sub-object); the records never put brace characters inside strings. A
/// malformed file yields an empty list, so the caller starts a fresh
/// trajectory rather than corrupting the file further.
fn extract_json_objects(s: &str) -> Vec<String> {
    let mut v = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    v.push(s[start..=i].to_string());
                }
            }
            _ => {}
        }
    }
    v
}

/// Drops the oldest records of `figure` beyond [`MAX_WALLCLOCK_ENTRIES`]
/// (other figures' records are untouched) and returns how many were
/// dropped.
fn cap_trajectory(records: &mut Vec<String>, figure: &str) -> usize {
    let tag = format!("\"figure\":\"{figure}\"");
    let mine = records.iter().filter(|r| r.contains(&tag)).count();
    let dropped = mine.saturating_sub(MAX_WALLCLOCK_ENTRIES);
    let mut left = dropped;
    records.retain(|r| {
        if left > 0 && r.contains(&tag) {
            left -= 1;
            false
        } else {
            true
        }
    });
    dropped
}

/// Writes `body` to a same-directory temp file, then renames it over
/// `path`, so readers never observe a partial file.
fn write_atomic(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Merges the per-run telemetry of every grid into one figure-level JSON
/// object, in spec order: `{"figure":…,"runs":[…]}`. Returns `None` when
/// no run carried telemetry (the knob was off), so callers can skip the
/// write entirely. Deterministic: each run's telemetry is virtual-time
/// sampled, so the merge is byte-identical for any `ASAP_JOBS`.
pub fn merged_telemetry_json(figure: &str, grids: &[&[RunResult]]) -> Option<String> {
    let runs: Vec<String> = grids
        .iter()
        .flat_map(|g| g.iter())
        .filter_map(RunResult::telemetry_json)
        .collect();
    if runs.is_empty() {
        return None;
    }
    Some(format!(
        "{{\"figure\":\"{figure}\",\"runs\":[{}]}}",
        runs.join(",")
    ))
}

/// Writes the merged telemetry for `figure` under the `ASAP_TELEMETRY_OUT`
/// directory (default `target/telemetry/` next to the workspace root;
/// empty disables). A no-op when telemetry was off for every run. Called
/// from [`emit_wallclock`], so every figure bench exports for free.
fn emit_telemetry(figure: &str, grids: &[&[RunResult]]) {
    let Some(merged) = merged_telemetry_json(figure, grids) else {
        return;
    };
    let dir = match std::env::var("ASAP_TELEMETRY_OUT") {
        Ok(d) if d.is_empty() => return,
        Ok(d) => std::path::PathBuf::from(d),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/telemetry"),
    };
    let path = dir.join(format!("{figure}.json"));
    let _t = phase::scope(phase::Phase::Export);
    let res = std::fs::create_dir_all(&dir).and_then(|()| write_atomic(&path, &merged));
    match res {
        Ok(()) => obs::note!("telemetry: {figure} -> {}", path.display()),
        Err(e) => obs::warn!("telemetry: could not write {}: {e}", path.display()),
    }
}

/// The standard figure spec: Table 2 system, scaled ops/threads, tracing
/// and telemetry per the `ASAP_TRACE*`/`ASAP_TELEMETRY*` environment
/// knobs.
pub fn fig_spec(bench: BenchId, scheme: SchemeKind) -> WorkloadSpec {
    WorkloadSpec::new(bench, scheme)
        .with_threads(threads())
        .with_ops(ops())
        .with_trace(TraceSettings::from_env())
        .with_telemetry(TelemetrySettings::from_env())
}

/// Geometric mean (0.0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Prints a fixed-width table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<8}");
    for c in cells {
        print!(" {c:>9}");
    }
    println!();
}

/// Prints a table header followed by a rule.
pub fn header(label: &str, cols: &[&str]) {
    row(
        label,
        &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    println!("{}", "-".repeat(8 + cols.len() * 10));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_extraction_and_cap() {
        assert!(extract_json_objects("garbage").is_empty());
        assert!(extract_json_objects("").is_empty());
        let s = "[\n  {\"figure\":\"a\",\"x\":1},\n  {\"figure\":\"b\",\"x\":2}\n]\n";
        assert_eq!(
            extract_json_objects(s),
            vec!["{\"figure\":\"a\",\"x\":1}", "{\"figure\":\"b\",\"x\":2}"]
        );

        // Over-full trajectory: the oldest records of the capped figure
        // are dropped, records of other figures stay, order is preserved.
        let mut records: Vec<String> = (0..MAX_WALLCLOCK_ENTRIES + 3)
            .map(|i| format!("{{\"figure\":\"f7\",\"n\":{i}}}"))
            .collect();
        records.insert(1, "{\"figure\":\"other\",\"n\":99}".to_string());
        assert_eq!(cap_trajectory(&mut records, "f7"), 3);
        assert_eq!(records.len(), MAX_WALLCLOCK_ENTRIES + 1);
        assert_eq!(records[0], "{\"figure\":\"other\",\"n\":99}");
        assert_eq!(records[1], "{\"figure\":\"f7\",\"n\":3}");
        assert_eq!(
            records.last().unwrap(),
            &format!("{{\"figure\":\"f7\",\"n\":{}}}", MAX_WALLCLOCK_ENTRIES + 2)
        );
        // Under the cap: untouched.
        assert_eq!(cap_trajectory(&mut records, "f7"), 0);
        assert_eq!(cap_trajectory(&mut records, "other"), 0);
        assert_eq!(records.len(), MAX_WALLCLOCK_ENTRIES + 1);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn env_defaults() {
        // Not set in the test environment.
        if std::env::var("ASAP_OPS").is_err() {
            assert_eq!(ops(), 200);
        }
        if std::env::var("ASAP_THREADS").is_err() {
            assert_eq!(threads(), 4);
        }
    }

    #[test]
    fn bench_filter_passthrough() {
        if std::env::var("ASAP_BENCHES").is_err() {
            assert_eq!(benches(&BenchId::all()).len(), 9);
        }
    }

    #[test]
    fn jobs_floor_is_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn run_grid_preserves_spec_order() {
        let specs: Vec<WorkloadSpec> = [SchemeKind::NoPersist, SchemeKind::Asap]
            .into_iter()
            .flat_map(|s| {
                [BenchId::Q, BenchId::Bt]
                    .into_iter()
                    .map(move |b| WorkloadSpec::new(b, s).with_threads(2).with_ops(20))
            })
            .collect();
        let parallel = run_grid_jobs(&specs, 4);
        assert_eq!(parallel.len(), specs.len());
        for (spec, res) in specs.iter().zip(&parallel) {
            assert_eq!(res.spec.bench, spec.bench);
            assert_eq!(res.spec.scheme, spec.scheme);
        }
    }

    #[test]
    fn merged_telemetry_is_identical_across_job_counts() {
        let specs: Vec<WorkloadSpec> = [BenchId::Q, BenchId::Hm]
            .into_iter()
            .map(|b| {
                WorkloadSpec::new(b, SchemeKind::Asap)
                    .with_threads(2)
                    .with_ops(20)
                    .with_telemetry(TelemetrySettings::enabled())
            })
            .collect();
        // Cache pinned off so both grids really run — a memoized second
        // grid would make the comparison vacuous.
        let serial = run_grid_with(&specs, 1, &RunCacheConfig::off());
        let parallel = run_grid_with(&specs, 2, &RunCacheConfig::off());
        let a = merged_telemetry_json("test", &[&serial]).expect("telemetry on");
        let b = merged_telemetry_json("test", &[&parallel]).expect("telemetry on");
        assert_eq!(a, b, "merge must not depend on ASAP_JOBS");
        asap_sim::json::parse(&a).expect("merged telemetry parses");
        // Telemetry-off grids merge to nothing.
        let off = vec![WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(10)];
        let res = run_grid_with(&off, 1, &RunCacheConfig::off());
        assert!(merged_telemetry_json("test", &[&res]).is_none());
    }

    #[test]
    fn run_grid_serial_and_parallel_agree() {
        let specs: Vec<WorkloadSpec> = [BenchId::Q, BenchId::Hm, BenchId::Ss]
            .into_iter()
            .map(|b| {
                WorkloadSpec::new(b, SchemeKind::Asap)
                    .with_threads(2)
                    .with_ops(20)
            })
            .collect();
        // Cache pinned off so the parallel grid actually re-simulates.
        let serial = run_grid_with(&specs, 1, &RunCacheConfig::off());
        let parallel = run_grid_with(&specs, 3, &RunCacheConfig::off());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.exec_cycles, b.exec_cycles);
            assert_eq!(a.drained_cycles, b.drained_cycles);
            assert_eq!(a.pm_writes, b.pm_writes);
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        }
    }

    #[test]
    fn crash_sweep_grid_matches_legacy_and_interops_with_cache() {
        use asap_workloads::resultjson::results_identical;
        let spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(20);
        // A duplicate point (dedup fan-out) and one beyond the workload's
        // writes (the fork completes).
        let points = [1u64, 9, 9, 1_000_000];
        let legacy: Vec<RunResult> = points
            .iter()
            .map(|&n| run(&spec.with_crash_after(n)))
            .collect();
        let plain = run(&spec);

        // Cache off: forks byte-identical to the legacy re-run path.
        let cold = run_crash_sweep_with(&spec, &points, 4, &RunCacheConfig::off());
        assert_eq!(cold.forks.len(), points.len());
        for (a, b) in cold.forks.iter().zip(&legacy) {
            assert!(results_identical(a, b), "cold sweep fork diverged");
        }
        assert_eq!(cold.baseline.crash_points.len(), points.len());

        // Disk cache: populate cold, then serve warm — same results, and
        // the warm baseline rebuilds the same crash-point summary.
        let dir = std::env::temp_dir().join(format!("asap-crash-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = RunCacheConfig::disk_only(&dir, 16);
        let c1 = run_crash_sweep_with(&spec, &points, 4, &cache);
        let c2 = run_crash_sweep_with(&spec, &points, 4, &cache);
        for sweep in [&c1, &c2] {
            for (a, b) in sweep.forks.iter().zip(&legacy) {
                assert!(results_identical(a, b), "cached sweep fork diverged");
            }
            assert!(results_identical(&sweep.baseline, &cold.baseline));
        }

        // Interop both ways: an ordinary grid over the same crash specs
        // is served from the sweep-populated cache, and the baseline
        // entry is interchangeable with a plain cell of the unarmed spec.
        let crash_specs: Vec<WorkloadSpec> =
            points.iter().map(|&n| spec.with_crash_after(n)).collect();
        let grid = run_grid_with(&crash_specs, 2, &cache);
        for (a, b) in grid.iter().zip(&legacy) {
            assert!(results_identical(a, b), "grid over sweep cache diverged");
        }
        let base_cell = run_grid_with(&[spec], 1, &cache);
        assert!(
            results_identical(&base_cell[0], &plain),
            "cached sweep baseline must be interchangeable with a plain cell"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_cells_collapse_and_match_fresh() {
        use asap_workloads::resultjson::results_identical;
        let spec = WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
            .with_threads(2)
            .with_ops(20);
        let specs = vec![spec, spec, spec];
        let dir = std::env::temp_dir().join(format!("asap-grid-dedup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = run_grid_with(&specs, 1, &RunCacheConfig::off());
        // Cold cached grid: one simulation, fan-out to all three slots.
        let cold = run_grid_with(&specs, 1, &RunCacheConfig::disk_only(&dir, 8));
        // Warm grid in a parallel pool: served from disk entirely.
        let warm = run_grid_with(&specs, 2, &RunCacheConfig::disk_only(&dir, 8));
        for grid in [&cold, &warm] {
            assert_eq!(grid.len(), specs.len());
            for (a, b) in grid.iter().zip(&fresh) {
                assert!(results_identical(a, b), "cached grid must equal fresh");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
