//! Shared harness for the figure-regeneration benches.
//!
//! Every table and figure in the paper's evaluation (§7) has a bench
//! target under `benches/` that prints the same rows/series the paper
//! plots. Run them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig7_speedup`.
//!
//! Scale knobs (environment):
//!
//! - `ASAP_OPS` — transactions per thread (default 200);
//! - `ASAP_THREADS` — worker threads (default 4);
//! - `ASAP_BENCHES` — comma-separated benchmark labels to restrict to;
//! - `ASAP_TRACE` / `ASAP_TRACE_CAP` — capture an event trace per run
//!   (see the `trace_report` example and DESIGN.md's Observability
//!   section).

#![warn(missing_docs)]

use asap_core::scheme::SchemeKind;
use asap_sim::TraceSettings;
use asap_workloads::{BenchId, WorkloadSpec};

/// Transactions per thread, from `ASAP_OPS` (default 200).
pub fn ops() -> u64 {
    std::env::var("ASAP_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Worker threads, from `ASAP_THREADS` (default 4).
pub fn threads() -> u32 {
    std::env::var("ASAP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The benchmark set, optionally restricted by `ASAP_BENCHES`.
pub fn benches(all: &[BenchId]) -> Vec<BenchId> {
    match std::env::var("ASAP_BENCHES") {
        Ok(list) => {
            let want: Vec<String> = list.split(',').map(|s| s.trim().to_uppercase()).collect();
            all.iter()
                .copied()
                .filter(|b| want.contains(&b.label().to_string()))
                .collect()
        }
        Err(_) => all.to_vec(),
    }
}

/// The standard figure spec: Table 2 system, scaled ops/threads, tracing
/// per the `ASAP_TRACE`/`ASAP_TRACE_CAP` environment knobs.
pub fn fig_spec(bench: BenchId, scheme: SchemeKind) -> WorkloadSpec {
    WorkloadSpec::new(bench, scheme)
        .with_threads(threads())
        .with_ops(ops())
        .with_trace(TraceSettings::from_env())
}

/// Geometric mean (0.0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Prints a fixed-width table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<8}");
    for c in cells {
        print!(" {c:>9}");
    }
    println!();
}

/// Prints a table header followed by a rule.
pub fn header(label: &str, cols: &[&str]) {
    row(
        label,
        &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    println!("{}", "-".repeat(8 + cols.len() * 10));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn env_defaults() {
        // Not set in the test environment.
        if std::env::var("ASAP_OPS").is_err() {
            assert_eq!(ops(), 200);
        }
        if std::env::var("ASAP_THREADS").is_err() {
            assert_eq!(threads(), 4);
        }
    }

    #[test]
    fn bench_filter_passthrough() {
        if std::env::var("ASAP_BENCHES").is_err() {
            assert_eq!(benches(&BenchId::all()).len(), 9);
        }
    }
}
