//! Figure 1: overhead of LPOs and DPOs in a software approach.
//!
//! Normalized throughput of the software baseline with data flushes only
//! ("DPO Only") and with full undo logging ("LPO & DPO"), relative to no
//! persistence (NP). The paper measures 0.58× and 0.31× geomean on real
//! hardware; the simulator reproduces the ordering and rough magnitudes.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::BenchId;

const SCHEMES: [SchemeKind; 3] = [
    SchemeKind::NoPersist,
    SchemeKind::SwDpoOnly,
    SchemeKind::SwUndo,
];

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Figure 1: software persist-operation overhead (normalized throughput) ===");
    header("bench", &["NP", "DPO Only", "LPO & DPO"]);
    let the_benches = benches(&BenchId::fig1());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| SCHEMES.iter().map(move |scheme| fig_spec(*bench, *scheme)))
        .collect();
    let results = run_grid(&specs);
    let mut dpo_only = Vec::new();
    let mut full = Vec::new();
    for (ci, cell) in results.chunks(SCHEMES.len()).enumerate() {
        let np = &cell[0];
        let dr = cell[1].speedup_over(np);
        let fr = cell[2].speedup_over(np);
        dpo_only.push(dr);
        full.push(fr);
        row(
            the_benches[ci].label(),
            &[
                format!("{:.2}", 1.0),
                format!("{dr:.2}"),
                format!("{fr:.2}"),
            ],
        );
    }
    row(
        "GeoMean",
        &[
            "1.00".into(),
            format!("{:.2}", geomean(&dpo_only)),
            format!("{:.2}", geomean(&full)),
        ],
    );
    println!("(paper: DPO Only 0.58, LPO & DPO 0.31)");
    emit_wallclock("fig1_sw_overhead", t0.elapsed(), &[&results]);
}
