//! Figure 1: overhead of LPOs and DPOs in a software approach.
//!
//! Normalized throughput of the software baseline with data flushes only
//! ("DPO Only") and with full undo logging ("LPO & DPO"), relative to no
//! persistence (NP). The paper measures 0.58× and 0.31× geomean on real
//! hardware; the simulator reproduces the ordering and rough magnitudes.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId};

fn main() {
    println!("\n=== Figure 1: software persist-operation overhead (normalized throughput) ===");
    header("bench", &["NP", "DPO Only", "LPO & DPO"]);
    let mut dpo_only = Vec::new();
    let mut full = Vec::new();
    for bench in benches(&BenchId::fig1()) {
        let np = run(&fig_spec(bench, SchemeKind::NoPersist));
        let d = run(&fig_spec(bench, SchemeKind::SwDpoOnly));
        let f = run(&fig_spec(bench, SchemeKind::SwUndo));
        let dr = d.speedup_over(&np);
        let fr = f.speedup_over(&np);
        dpo_only.push(dr);
        full.push(fr);
        row(
            bench.label(),
            &[
                format!("{:.2}", 1.0),
                format!("{dr:.2}"),
                format!("{fr:.2}"),
            ],
        );
    }
    row(
        "GeoMean",
        &[
            "1.00".into(),
            format!("{:.2}", geomean(&dpo_only)),
            format!("{:.2}", geomean(&full)),
        ],
    );
    println!("(paper: DPO Only 0.58, LPO & DPO 0.31)");
}
