//! Figure 7: performance comparison — speedup over SW (higher is better).
//!
//! All nine benchmarks with 64B and 2KB data sizes per atomic region, for
//! SW / HWRedo / HWUndo / ASAP / NP. The paper's geomeans: HWRedo 1.49×,
//! HWUndo 1.60×, ASAP 2.25×, NP ≈ 1.04× ASAP.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::BenchId;

const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::SwUndo,
    SchemeKind::HwRedo,
    SchemeKind::HwUndo,
    SchemeKind::Asap,
    SchemeKind::NoPersist,
];

const SIZES: [u64; 2] = [64, 2048];

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Figure 7: speedup over SW (higher is better) ===");
    header("bench", &["size", "SW", "HWRedo", "HWUndo", "ASAP", "NP"]);
    // One grid cell per (bench, size, scheme); the SW run appears exactly
    // once per (bench, size) and doubles as that row's baseline.
    let the_benches = benches(&BenchId::all());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| {
            SIZES.iter().flat_map(move |vb| {
                SCHEMES
                    .iter()
                    .map(move |scheme| fig_spec(*bench, *scheme).with_value_bytes(*vb))
            })
        })
        .collect();
    let results = run_grid(&specs);
    let mut geo = vec![Vec::new(); SCHEMES.len()];
    for (ci, cell) in results.chunks(SCHEMES.len()).enumerate() {
        let bench = the_benches[ci / SIZES.len()];
        let vb = SIZES[ci % SIZES.len()];
        let sw = &cell[0];
        let mut cells = vec![format!("{}B", vb)];
        for (i, r) in cell.iter().enumerate() {
            let s = if i == 0 { 1.0 } else { r.speedup_over(sw) };
            geo[i].push(s);
            cells.push(format!("{s:.2}"));
        }
        row(bench.label(), &cells);
    }
    let cells: Vec<String> = std::iter::once("both".to_string())
        .chain(geo.iter().map(|g| format!("{:.2}", geomean(g))))
        .collect();
    row("GeoMean", &cells);
    println!("(paper geomeans: SW 1.00, HWRedo 1.49, HWUndo 1.60, ASAP 2.25, NP 2.35)");
    emit_wallclock("fig7_speedup", t0.elapsed(), &[&results]);
}
