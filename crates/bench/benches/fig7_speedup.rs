//! Figure 7: performance comparison — speedup over SW (higher is better).
//!
//! All nine benchmarks with 64B and 2KB data sizes per atomic region, for
//! SW / HWRedo / HWUndo / ASAP / NP. The paper's geomeans: HWRedo 1.49×,
//! HWUndo 1.60×, ASAP 2.25×, NP ≈ 1.04× ASAP.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId};

const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::SwUndo,
    SchemeKind::HwRedo,
    SchemeKind::HwUndo,
    SchemeKind::Asap,
    SchemeKind::NoPersist,
];

fn main() {
    println!("\n=== Figure 7: speedup over SW (higher is better) ===");
    header("bench", &["size", "SW", "HWRedo", "HWUndo", "ASAP", "NP"]);
    let mut geo = vec![Vec::new(); SCHEMES.len()];
    for bench in benches(&BenchId::all()) {
        for vb in [64u64, 2048] {
            let sw = run(&fig_spec(bench, SchemeKind::SwUndo).with_value_bytes(vb));
            let mut cells = vec![format!("{}B", vb)];
            for (i, scheme) in SCHEMES.iter().enumerate() {
                let s = if *scheme == SchemeKind::SwUndo {
                    1.0
                } else {
                    run(&fig_spec(bench, *scheme).with_value_bytes(vb)).speedup_over(&sw)
                };
                geo[i].push(s);
                cells.push(format!("{s:.2}"));
            }
            row(bench.label(), &cells);
        }
    }
    let cells: Vec<String> = std::iter::once("both".to_string())
        .chain(geo.iter().map(|g| format!("{:.2}", geomean(g))))
        .collect();
    row("GeoMean", &cells);
    println!("(paper geomeans: SW 1.00, HWRedo 1.49, HWUndo 1.60, ASAP 2.25, NP 2.35)");
}
