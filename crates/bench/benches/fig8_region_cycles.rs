//! Figure 8: average cycles per atomic region, normalized to NP (lower is
//! better).
//!
//! Synchronous-commit schemes pay their persist waits inside the region;
//! ASAP proceeds past `asap_end` immediately. The paper reports HWRedo
//! 1.69×, HWUndo 1.61× and ASAP only 1.08× of NP.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId};

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::SwUndo,
    SchemeKind::HwRedo,
    SchemeKind::HwUndo,
    SchemeKind::Asap,
];

fn main() {
    println!("\n=== Figure 8: cycles per atomic region normalized to NP (lower is better) ===");
    header("bench", &["size", "SW", "HWRedo", "HWUndo", "ASAP", "NP"]);
    let mut geo = vec![Vec::new(); SCHEMES.len()];
    for bench in benches(&BenchId::all()) {
        for vb in [64u64, 2048] {
            let np = run(&fig_spec(bench, SchemeKind::NoPersist).with_value_bytes(vb));
            let base = np.region_cycles_mean.max(1.0);
            let mut cells = vec![format!("{}B", vb)];
            for (i, scheme) in SCHEMES.iter().enumerate() {
                let r = run(&fig_spec(bench, *scheme).with_value_bytes(vb));
                let norm = r.region_cycles_mean / base;
                geo[i].push(norm);
                cells.push(format!("{norm:.2}"));
            }
            cells.push("1.00".into());
            row(bench.label(), &cells);
        }
    }
    let cells: Vec<String> = std::iter::once("both".to_string())
        .chain(geo.iter().map(|g| format!("{:.2}", geomean(g))))
        .chain(std::iter::once("1.00".to_string()))
        .collect();
    row("GeoMean", &cells);
    println!("(paper geomeans: HWRedo 1.69, HWUndo 1.61, ASAP 1.08 of NP)");
}
