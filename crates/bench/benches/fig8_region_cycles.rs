//! Figure 8: average cycles per atomic region, normalized to NP (lower is
//! better).
//!
//! Synchronous-commit schemes pay their persist waits inside the region;
//! ASAP proceeds past `asap_end` immediately. The paper reports HWRedo
//! 1.69×, HWUndo 1.61× and ASAP only 1.08× of NP.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::BenchId;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::SwUndo,
    SchemeKind::HwRedo,
    SchemeKind::HwUndo,
    SchemeKind::Asap,
];

const SIZES: [u64; 2] = [64, 2048];

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Figure 8: cycles per atomic region normalized to NP (lower is better) ===");
    header("bench", &["size", "SW", "HWRedo", "HWUndo", "ASAP", "NP"]);
    // Cell layout: NP baseline first, then the four schemes.
    let the_benches = benches(&BenchId::all());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| {
            SIZES.iter().flat_map(move |vb| {
                std::iter::once(SchemeKind::NoPersist)
                    .chain(SCHEMES)
                    .map(move |scheme| fig_spec(*bench, scheme).with_value_bytes(*vb))
            })
        })
        .collect();
    let results = run_grid(&specs);
    let mut geo = vec![Vec::new(); SCHEMES.len()];
    for (ci, cell) in results.chunks(1 + SCHEMES.len()).enumerate() {
        let bench = the_benches[ci / SIZES.len()];
        let vb = SIZES[ci % SIZES.len()];
        let base = cell[0].region_cycles_mean.max(1.0);
        let mut cells = vec![format!("{}B", vb)];
        for (i, r) in cell[1..].iter().enumerate() {
            let norm = r.region_cycles_mean / base;
            geo[i].push(norm);
            cells.push(format!("{norm:.2}"));
        }
        cells.push("1.00".into());
        row(bench.label(), &cells);
    }
    let cells: Vec<String> = std::iter::once("both".to_string())
        .chain(geo.iter().map(|g| format!("{:.2}", geomean(g))))
        .chain(std::iter::once("1.00".to_string()))
        .collect();
    row("GeoMean", &cells);
    println!("(paper geomeans: HWRedo 1.69, HWUndo 1.61, ASAP 1.08 of NP)");
    emit_wallclock("fig8_region_cycles", t0.elapsed(), &[&results]);
}
