//! Ablation (beyond the paper's figures): the DPO coalescing distance.
//!
//! §4.6.2 fixes the distance at 4 ("empirically determined, as no benefit
//! has been observed at a distance larger than four"). This bench sweeps
//! the distance and reports PM write traffic and throughput so the choice
//! can be checked in this model.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId};

const DISTANCES: [u32; 5] = [1, 2, 4, 8, 16];

fn main() {
    println!("\n=== Ablation: DPO coalescing distance (traffic normalized to distance 4) ===");
    header("bench", &["d=1", "d=2", "d=4", "d=8", "d=16"]);
    let mut geo = vec![Vec::new(); DISTANCES.len()];
    for bench in benches(&BenchId::all()) {
        let mut base_spec = fig_spec(bench, SchemeKind::Asap);
        base_spec.system.asap.dpo_distance = 4;
        let base = run(&base_spec);
        let mut cells = Vec::new();
        for (i, d) in DISTANCES.iter().enumerate() {
            let r = if *d == 4 {
                1.0
            } else {
                let mut spec = fig_spec(bench, SchemeKind::Asap);
                spec.system.asap.dpo_distance = *d;
                run(&spec).traffic_ratio_to(&base)
            };
            geo[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(bench.label(), &cells);
    }
    row(
        "GeoMean",
        &geo.iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(expected: traffic falls up to d≈4, little benefit beyond — §4.6.2)");
}
