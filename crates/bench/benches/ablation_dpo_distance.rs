//! Ablation (beyond the paper's figures): the DPO coalescing distance.
//!
//! §4.6.2 fixes the distance at 4 ("empirically determined, as no benefit
//! has been observed at a distance larger than four"). This bench sweeps
//! the distance and reports PM write traffic and throughput so the choice
//! can be checked in this model.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::{BenchId, WorkloadSpec};

const DISTANCES: [u32; 5] = [1, 2, 4, 8, 16];

fn spec(bench: BenchId, distance: u32) -> WorkloadSpec {
    let mut s = fig_spec(bench, SchemeKind::Asap);
    s.system.asap.dpo_distance = distance;
    s
}

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Ablation: DPO coalescing distance (traffic normalized to distance 4) ===");
    header("bench", &["d=1", "d=2", "d=4", "d=8", "d=16"]);
    // Cell layout per bench: one run per distance; the d=4 run is the
    // baseline.
    let the_benches = benches(&BenchId::all());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| DISTANCES.iter().map(move |d| spec(*bench, *d)))
        .collect();
    let results = run_grid(&specs);
    let mut geo = vec![Vec::new(); DISTANCES.len()];
    for (ci, cell) in results.chunks(DISTANCES.len()).enumerate() {
        let base = &cell[2];
        debug_assert_eq!(DISTANCES[2], 4);
        let mut cells = Vec::new();
        for (i, d) in DISTANCES.iter().enumerate() {
            let r = if *d == 4 {
                1.0
            } else {
                cell[i].traffic_ratio_to(base)
            };
            geo[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(the_benches[ci].label(), &cells);
    }
    row(
        "GeoMean",
        &geo.iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(expected: traffic falls up to d≈4, little benefit beyond — §4.6.2)");
    emit_wallclock("ablation_dpo_distance", t0.elapsed(), &[&results]);
}
