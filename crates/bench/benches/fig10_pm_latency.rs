//! Figure 10: sensitivity of throughput to PM latency (higher is better).
//!
//! Throughput normalized to NP as the PM access latency grows from 1× to
//! 16× battery-backed DRAM. The paper: HWUndo degrades fastest (slow
//! synchronous persists extend the critical path), HWRedo is less
//! sensitive (async DPOs), and ASAP tracks NP across the sweep.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId, WorkloadSpec};

const MULTS: [u64; 4] = [1, 2, 4, 16];

/// Longer runs than the other figures: WPQ backpressure under slow PM
/// needs time to reach steady state.
fn spec(bench: BenchId, scheme: SchemeKind, mult: u64) -> WorkloadSpec {
    let mut s = fig_spec(bench, scheme).with_ops(asap_bench::ops() * 3);
    s.system = s.system.with_pm_latency_mult(mult);
    s
}
const SCHEMES: [(&str, SchemeKind); 3] = [
    ("ASAP", SchemeKind::Asap),
    ("HWUndo", SchemeKind::HwUndo),
    ("HWRedo", SchemeKind::HwRedo),
];

fn main() {
    println!("\n=== Figure 10: throughput vs PM latency, normalized to NP at each point ===");
    header("bench", &["mult", "NP", "ASAP", "HWUndo", "HWRedo"]);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len() * MULTS.len()];
    for bench in benches(&BenchId::all()) {
        for (mi, mult) in MULTS.iter().enumerate() {
            let np = run(&spec(bench, SchemeKind::NoPersist, *mult));
            let mut cells = vec![format!("{mult}x"), "1.00".to_string()];
            for (si, (_, scheme)) in SCHEMES.iter().enumerate() {
                let r = run(&spec(bench, *scheme, *mult)).speedup_over(&np);
                geo[si * MULTS.len() + mi].push(r);
                cells.push(format!("{r:.2}"));
            }
            row(bench.label(), &cells);
        }
    }
    println!("\n--- geomeans per latency multiplier ---");
    header("scheme", &["1x", "2x", "4x", "16x"]);
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        let cells: Vec<String> = (0..MULTS.len())
            .map(|mi| format!("{:.2}", geomean(&geo[si * MULTS.len() + mi])))
            .collect();
        row(name, &cells);
    }
    println!("(paper: ASAP stays near NP at 16x; HWUndo degrades the most)");
}
