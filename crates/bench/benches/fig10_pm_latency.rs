//! Figure 10: sensitivity of throughput to PM latency (higher is better).
//!
//! Throughput normalized to NP as the PM access latency grows from 1× to
//! 16× battery-backed DRAM. The paper: HWUndo degrades fastest (slow
//! synchronous persists extend the critical path), HWRedo is less
//! sensitive (async DPOs), and ASAP tracks NP across the sweep.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::{BenchId, WorkloadSpec};

const MULTS: [u64; 4] = [1, 2, 4, 16];

/// Longer runs than the other figures: WPQ backpressure under slow PM
/// needs time to reach steady state.
fn spec(bench: BenchId, scheme: SchemeKind, mult: u64) -> WorkloadSpec {
    let mut s = fig_spec(bench, scheme).with_ops(asap_bench::ops() * 3);
    s.system = s.system.with_pm_latency_mult(mult);
    s
}
const SCHEMES: [(&str, SchemeKind); 3] = [
    ("ASAP", SchemeKind::Asap),
    ("HWUndo", SchemeKind::HwUndo),
    ("HWRedo", SchemeKind::HwRedo),
];

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Figure 10: throughput vs PM latency, normalized to NP at each point ===");
    header("bench", &["mult", "NP", "ASAP", "HWUndo", "HWRedo"]);
    // Cell layout per (bench, mult): NP baseline, then the three schemes.
    let the_benches = benches(&BenchId::all());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| {
            MULTS.iter().flat_map(move |mult| {
                std::iter::once(SchemeKind::NoPersist)
                    .chain(SCHEMES.iter().map(|(_, s)| *s))
                    .map(move |scheme| spec(*bench, scheme, *mult))
            })
        })
        .collect();
    let results = run_grid(&specs);
    let cell_len = 1 + SCHEMES.len();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len() * MULTS.len()];
    for (ci, cell) in results.chunks(cell_len).enumerate() {
        let bench = the_benches[ci / MULTS.len()];
        let mi = ci % MULTS.len();
        let np = &cell[0];
        let mut cells = vec![format!("{}x", MULTS[mi]), "1.00".to_string()];
        for (si, r) in cell[1..].iter().enumerate() {
            let s = r.speedup_over(np);
            geo[si * MULTS.len() + mi].push(s);
            cells.push(format!("{s:.2}"));
        }
        row(bench.label(), &cells);
    }
    println!("\n--- geomeans per latency multiplier ---");
    header("scheme", &["1x", "2x", "4x", "16x"]);
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        let cells: Vec<String> = (0..MULTS.len())
            .map(|mi| format!("{:.2}", geomean(&geo[si * MULTS.len() + mi])))
            .collect();
        row(name, &cells);
    }
    println!("(paper: ASAP stays near NP at 16x; HWUndo degrades the most)");
    emit_wallclock("fig10_pm_latency", t0.elapsed(), &[&results]);
}
