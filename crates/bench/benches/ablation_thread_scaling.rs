//! Ablation (beyond the paper's figures): thread scaling under lock
//! contention.
//!
//! §2.1 argues that persist latency inside critical sections translates
//! into lock contention: "high latency atomic regions translate into high
//! latency critical sections". Synchronous schemes hold data unavailable
//! (the lock, for the sync family; the region body itself never waits for
//! ASAP) — so ASAP's advantage should *grow* with thread count on a
//! lock-contended benchmark. Q uses a single global lock.

use asap_bench::{emit_wallclock, geomean, header, ops, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_sim::SystemConfig;
use asap_workloads::{BenchId, WorkloadSpec};

const THREADS: [u32; 5] = [1, 2, 4, 8, 16];
const SCHEMES: [(&str, SchemeKind); 4] = [
    ("SW", SchemeKind::SwUndo),
    ("HWUndo", SchemeKind::HwUndo),
    ("ASAP", SchemeKind::Asap),
    ("NP", SchemeKind::NoPersist),
];

fn main() {
    let t0 = std::time::Instant::now();
    println!(
        "\n=== Ablation: throughput vs threads on Q (global lock), normalized to 1-thread SW ==="
    );
    header("scheme", &["t=1", "t=2", "t=4", "t=8", "t=16"]);
    // Grid layout: scheme-major, thread-minor. The first cell (SW, t=1) is
    // also the normalization baseline.
    let specs: Vec<_> = SCHEMES
        .iter()
        .flat_map(|(_, scheme)| {
            THREADS.iter().map(move |t| {
                WorkloadSpec::new(BenchId::Q, *scheme)
                    .with_threads(*t)
                    .with_ops(ops())
            })
        })
        .collect();
    let results = run_grid(&specs);
    let base = &results[0];
    let rows: Vec<(usize, Vec<f64>)> = SCHEMES
        .iter()
        .enumerate()
        .map(|(si, _)| {
            let vals = results[si * THREADS.len()..(si + 1) * THREADS.len()]
                .iter()
                .map(|r| r.speedup_over(base))
                .collect();
            (si, vals)
        })
        .collect();
    for (si, vals) in &rows {
        row(
            SCHEMES[*si].0,
            &vals.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>(),
        );
    }
    let mut asap_over_undo = Vec::new();
    for (i, _) in THREADS.iter().enumerate() {
        let undo = rows[1].1[i];
        let asap = rows[2].1[i];
        asap_over_undo.push(asap / undo);
    }
    println!(
        "\nASAP/HWUndo by thread count: {}",
        asap_over_undo
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "(§2.1: the async-commit advantage should hold or grow with contention; geomean {:.2})",
        geomean(&asap_over_undo)
    );
    // --- Wide-machine cells: presence masks beyond one 64-bit word. ---
    // cores = threads at 128 and 256 exercises the multi-word sharer
    // masks in the cache hierarchy end-to-end (every run asserts
    // `check_inclusive` after the drain). Reduced op counts keep the
    // wall-clock bounded: the point is correctness at scale plus the
    // contention trend, not absolute throughput.
    println!("\n=== Wide-machine cells: cores = threads, normalized to 128-core SW ===");
    header("scheme", &["c=128", "c=256"]);
    const WIDE: [u32; 2] = [128, 256];
    let wide_ops = (ops() / 8).max(4);
    let wide_specs: Vec<_> = SCHEMES
        .iter()
        .flat_map(|(_, scheme)| {
            WIDE.iter().map(move |c| {
                let mut sys = SystemConfig::table2();
                sys.cores = *c;
                WorkloadSpec::new(BenchId::Q, *scheme)
                    .with_system(sys)
                    .with_threads(*c)
                    .with_ops(wide_ops)
            })
        })
        .collect();
    let wide_results = run_grid(&wide_specs);
    let wide_base = &wide_results[0];
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        let vals: Vec<String> = wide_results[si * WIDE.len()..(si + 1) * WIDE.len()]
            .iter()
            .map(|r| format!("{:.2}", r.speedup_over(wide_base)))
            .collect();
        row(name, &vals);
    }
    emit_wallclock(
        "ablation_thread_scaling",
        t0.elapsed(),
        &[&results, &wide_results],
    );
}
