//! Figure 9: persistent memory write traffic (lower is better).
//!
//! (a) the incremental effect of ASAP's §5.1 optimizations — DPO
//! coalescing (+C), LPO dropping (+LP) and DPO dropping (full ASAP),
//! normalized to full ASAP;
//! (b) traffic of SW / HWRedo / HWUndo vs ASAP.
//!
//! The paper: coalescing saves ~8%, +LPO dropping ~33%, +DPO dropping
//! ~31%; ASAP generates 0.62× / 0.52× / 0.39× the traffic of HWRedo /
//! HWUndo / SW.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::{AsapOpts, SchemeKind};
use asap_workloads::BenchId;

fn main() {
    let t0 = std::time::Instant::now();
    let variants = [
        ("No-Opt", SchemeKind::AsapWith(AsapOpts::none())),
        ("+C", SchemeKind::AsapWith(AsapOpts::coalescing_only())),
        (
            "+C+LP",
            SchemeKind::AsapWith(AsapOpts::coalescing_and_lpo()),
        ),
        ("ASAP", SchemeKind::Asap),
    ];
    let schemes = [
        ("SW", SchemeKind::SwUndo),
        ("HWRedo", SchemeKind::HwRedo),
        ("HWUndo", SchemeKind::HwUndo),
        ("ASAP", SchemeKind::Asap),
    ];
    // One combined grid for both panels: per bench, the full-ASAP run comes
    // first and serves as the baseline for 9a *and* 9b (it used to be
    // simulated twice), then the three 9a variants, then the three 9b
    // baselines.
    let the_benches = benches(&BenchId::all());
    let extras = [
        SchemeKind::AsapWith(AsapOpts::none()),
        SchemeKind::AsapWith(AsapOpts::coalescing_only()),
        SchemeKind::AsapWith(AsapOpts::coalescing_and_lpo()),
        SchemeKind::SwUndo,
        SchemeKind::HwRedo,
        SchemeKind::HwUndo,
    ];
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| {
            std::iter::once(SchemeKind::Asap)
                .chain(extras)
                .map(move |scheme| fig_spec(*bench, scheme))
        })
        .collect();
    let results = run_grid(&specs);
    let cell_len = 1 + extras.len();

    println!("\n=== Figure 9a: ASAP traffic-optimization ablation (normalized to full ASAP) ===");
    header(
        "bench",
        &variants.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );
    let mut geo_a = vec![Vec::new(); variants.len()];
    for (ci, cell) in results.chunks(cell_len).enumerate() {
        let full = &cell[0];
        let mut cells = Vec::new();
        for (i, (_, scheme)) in variants.iter().enumerate() {
            let r = if *scheme == SchemeKind::Asap {
                1.0
            } else {
                cell[1 + i].traffic_ratio_to(full)
            };
            geo_a[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(the_benches[ci].label(), &cells);
    }
    row(
        "GeoMean",
        &geo_a
            .iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(paper: +C saves ~8%, +LP another ~33%, DPO dropping another ~31%)");

    println!("\n=== Figure 9b: PM write traffic normalized to ASAP (lower is better) ===");
    header(
        "bench",
        &schemes.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );
    let mut geo_b = vec![Vec::new(); schemes.len()];
    for (ci, cell) in results.chunks(cell_len).enumerate() {
        let asap = &cell[0];
        let mut cells = Vec::new();
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let r = if *scheme == SchemeKind::Asap {
                1.0
            } else {
                cell[4 + i].traffic_ratio_to(asap)
            };
            geo_b[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(the_benches[ci].label(), &cells);
    }
    row(
        "GeoMean",
        &geo_b
            .iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(paper: ASAP traffic is 0.39x SW, 0.52x HWUndo, 0.62x HWRedo — i.e. SW 2.56, HWUndo 1.92, HWRedo 1.61 normalized to ASAP)");
    emit_wallclock("fig9_traffic", t0.elapsed(), &[&results]);
}
