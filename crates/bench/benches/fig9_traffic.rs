//! Figure 9: persistent memory write traffic (lower is better).
//!
//! (a) the incremental effect of ASAP's §5.1 optimizations — DPO
//! coalescing (+C), LPO dropping (+LP) and DPO dropping (full ASAP),
//! normalized to full ASAP;
//! (b) traffic of SW / HWRedo / HWUndo vs ASAP.
//!
//! The paper: coalescing saves ~8%, +LPO dropping ~33%, +DPO dropping
//! ~31%; ASAP generates 0.62× / 0.52× / 0.39× the traffic of HWRedo /
//! HWUndo / SW.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::{AsapOpts, SchemeKind};
use asap_workloads::{run, BenchId};

fn main() {
    println!("\n=== Figure 9a: ASAP traffic-optimization ablation (normalized to full ASAP) ===");
    let variants = [
        ("No-Opt", SchemeKind::AsapWith(AsapOpts::none())),
        ("+C", SchemeKind::AsapWith(AsapOpts::coalescing_only())),
        (
            "+C+LP",
            SchemeKind::AsapWith(AsapOpts::coalescing_and_lpo()),
        ),
        ("ASAP", SchemeKind::Asap),
    ];
    header(
        "bench",
        &variants.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );
    let mut geo_a = vec![Vec::new(); variants.len()];
    let the_benches = benches(&BenchId::all());
    for bench in &the_benches {
        let full = run(&fig_spec(*bench, SchemeKind::Asap));
        let mut cells = Vec::new();
        for (i, (_, scheme)) in variants.iter().enumerate() {
            let r = if *scheme == SchemeKind::Asap {
                1.0
            } else {
                run(&fig_spec(*bench, *scheme)).traffic_ratio_to(&full)
            };
            geo_a[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(bench.label(), &cells);
    }
    row(
        "GeoMean",
        &geo_a
            .iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(paper: +C saves ~8%, +LP another ~33%, DPO dropping another ~31%)");

    println!("\n=== Figure 9b: PM write traffic normalized to ASAP (lower is better) ===");
    let schemes = [
        ("SW", SchemeKind::SwUndo),
        ("HWRedo", SchemeKind::HwRedo),
        ("HWUndo", SchemeKind::HwUndo),
        ("ASAP", SchemeKind::Asap),
    ];
    header(
        "bench",
        &schemes.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );
    let mut geo_b = vec![Vec::new(); schemes.len()];
    for bench in &the_benches {
        let asap = run(&fig_spec(*bench, SchemeKind::Asap));
        let mut cells = Vec::new();
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let r = if *scheme == SchemeKind::Asap {
                1.0
            } else {
                run(&fig_spec(*bench, *scheme)).traffic_ratio_to(&asap)
            };
            geo_b[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(bench.label(), &cells);
    }
    row(
        "GeoMean",
        &geo_b
            .iter()
            .map(|g| format!("{:.2}", geomean(g)))
            .collect::<Vec<_>>(),
    );
    println!("(paper: ASAP traffic is 0.39x SW, 0.52x HWUndo, 0.62x HWRedo — i.e. SW 2.56, HWUndo 1.92, HWRedo 1.61 normalized to ASAP)");
}
