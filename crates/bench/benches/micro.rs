//! Criterion microbenchmarks of the simulator substrates: cache hierarchy
//! access, WPQ submit/drain, log-record encode/decode, Dependence List
//! broadcast, bloom filter probes, and an end-to-end small transaction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asap_core::logbuf::RecordHeader;
use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::asap::structs::DepLists;
use asap_core::scheme::SchemeKind;
use asap_mem::cache::AccessKind;
use asap_mem::{BloomFilter, CacheHierarchy, MemSystem, PersistKind, PersistOp, Rid};
use asap_pmem::{LineAddr, MemoryImage, PmAddr, PM_BASE};
use asap_sim::{Cycle, SystemConfig};

fn bench_cache(c: &mut Criterion) {
    let cfg = SystemConfig::table2();
    c.bench_function("cache_hit_l1", |b| {
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0, LineAddr(1), AccessKind::Load, Some(([0u8; 64], false)), 150);
        b.iter(|| black_box(h.access(0, LineAddr(1), AccessKind::Load, None, 150).latency));
    });
    c.bench_function("cache_miss_fill_evict", |b| {
        let mut h = CacheHierarchy::new(&SystemConfig::small());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(
                h.access(0, LineAddr(i % 8192), AccessKind::Load, Some(([0u8; 64], true)), 150)
                    .latency,
            )
        });
    });
}

fn bench_wpq(c: &mut Criterion) {
    c.bench_function("wpq_submit_drain", |b| {
        let cfg = SystemConfig::table2();
        let mut mem = MemSystem::new(&cfg);
        let mut image = MemoryImage::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            let line = LineAddr(PM_BASE / 64 + t % 1024);
            mem.submit(PersistOp::new(PersistKind::Dpo, line, [0u8; 64], None), Cycle(t));
            mem.advance_to(Cycle(t), &mut image);
            while mem.pop_event().is_some() {}
        });
    });
}

fn bench_log(c: &mut Criterion) {
    c.bench_function("record_header_encode_decode", |b| {
        let mut h = RecordHeader::new(Rid::new(3, 99), Some(PmAddr(0x8000_1000)));
        for i in 0..7 {
            h.push_entry(LineAddr(0x200_0000 + i));
        }
        b.iter(|| {
            let bytes = black_box(h.encode());
            black_box(RecordHeader::decode(&bytes))
        });
    });
}

fn bench_deplist(c: &mut Criterion) {
    c.bench_function("deplist_insert_broadcast", |b| {
        b.iter(|| {
            let mut d = DepLists::new(4, 128, 4);
            for i in 0..64 {
                d.insert(Rid::new(0, i));
                if i > 0 {
                    d.add_dep(Rid::new(0, i), Rid::new(0, i - 1));
                }
            }
            for i in 0..64 {
                d.get_mut(Rid::new(0, i)).unwrap().done = true;
                d.remove(Rid::new(0, i));
                black_box(d.clear_dep_everywhere(Rid::new(0, i)));
            }
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("bloom_insert_probe", |b| {
        let mut bf = BloomFilter::new(8 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bf.insert(LineAddr(i));
            black_box(bf.may_contain(LineAddr(i + 1)))
        });
    });
}

fn bench_transaction(c: &mut Criterion) {
    c.bench_function("asap_small_transaction", |b| {
        let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
        let a = m.pm_alloc(64 * 16).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.run_thread(0, |ctx| {
                ctx.begin_region();
                ctx.write_u64(a.offset(i % 16 * 64), i);
                ctx.end_region();
            });
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_wpq, bench_log, bench_deplist, bench_bloom, bench_transaction
);
criterion_main!(micro);
