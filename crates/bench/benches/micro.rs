//! Microbenchmarks of the simulator substrates: cache hierarchy access, WPQ
//! submit/drain, log-record encode/decode, Dependence List broadcast, bloom
//! filter probes, spec fingerprinting, run-cache disk hits/inserts, and an
//! end-to-end small transaction.
//!
//! Plain `fn main` harness (no criterion — the build environment is offline):
//! each benchmark warms up, then runs timed batches and reports ns/iter with
//! the standard deviation across batches.

use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

use asap_core::logbuf::RecordHeader;
use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::asap::structs::DepLists;
use asap_core::scheme::SchemeKind;
use asap_mem::cache::AccessKind;
use asap_mem::{BloomFilter, CacheHierarchy, MemSystem, PersistKind, PersistOp, Rid};
use asap_pmem::{LineAddr, MemoryImage, PmAddr, PM_BASE};
use asap_sim::{Cycle, EventQueue, Summary, SystemConfig};

const WARMUP_ITERS: u64 = 2_000;
const BATCHES: u64 = 10;

fn iters_per_batch() -> u64 {
    std::env::var("ASAP_MICRO_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Runs `f` repeatedly and prints mean ± stddev ns/iter over the batches.
fn bench(name: &str, f: impl FnMut()) {
    bench_with(name, WARMUP_ITERS, iters_per_batch(), f);
}

/// [`bench`] with explicit warmup/iteration counts, for benchmarks whose
/// single iteration is orders of magnitude heavier than the substrate
/// loops (e.g. a full fork restore + replay).
fn bench_with(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let mut per_batch = Summary::default();
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_batch.record(t0.elapsed().as_nanos() as u64 / iters);
    }
    println!(
        "{name:<28} {:>8.1} ns/iter  (stddev {:>6.1}, {BATCHES} batches x {iters} iters)",
        per_batch.mean(),
        per_batch.stddev(),
    );
}

fn bench_events() {
    // Rolling near-future window: the common simulator shape (a handful of
    // in-flight events per channel, popped in time order). Stays within
    // warmed calendar buckets, so the loop is allocation-free.
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    bench("event_queue_push_pop", || {
        t += 13;
        q.push(Cycle(t + 16), t);
        q.push(Cycle(t + 900), t + 1);
        black_box(q.pop());
        black_box(q.pop());
    });

    // Same-cycle burst: every event of a batch lands in one bucket and
    // must pop in insertion order (FIFO within a cycle).
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut t = 0u64;
    bench("event_queue_burst_fifo", || {
        t += 1;
        for i in 0..8u64 {
            q.push(Cycle(t), i);
        }
        while q.pop().is_some() {}
    });
}

fn bench_domains() {
    // Min-of-mins frontier over per-channel calendar wheels — the
    // domain-partitioned replacement for the single global wheel
    // (DESIGN.md §12). Same rolling near-future shape as
    // `event_queue_push_pop`, spread across four domains so every pop
    // pays the frontier scan.
    let mut dw: asap_sim::DomainWheels<u64> = asap_sim::DomainWheels::new(4);
    let mut t = 0u64;
    bench("domain_frontier_push_pop", || {
        t += 13;
        for ch in 0..4u32 {
            dw.push(ch, Cycle(t + 16 + u64::from(ch) * 7), t);
        }
        for _ in 0..4 {
            black_box(dw.pop());
        }
    });

    // Cross-domain exchange: a full parallel window — scoped workers
    // drain each channel's wheel, then the serial replay merge re-emits
    // the buffered out-events in global order. Measures the fixed cost
    // of engaging `ASAP_CELL_JOBS` per advance (thread scope + merge),
    // the overhead the window-size floor exists to amortize.
    let cfg = SystemConfig::table2();
    asap_mem::set_cell_jobs(Some(2));
    asap_mem::set_parallel_window_min(Some(0));
    let mut mem = MemSystem::new(&cfg);
    asap_mem::set_cell_jobs(None);
    asap_mem::set_parallel_window_min(None);
    let mut image = MemoryImage::new();
    let mut t = 0u64;
    bench("domain_window_exchange", || {
        t += 100;
        for i in 0..8u64 {
            let line = LineAddr(PM_BASE / 64 + (t + i * 129) % 1024);
            mem.submit(
                PersistOp::new(PersistKind::Dpo, line, [0u8; 64], None),
                Cycle(t),
            );
        }
        mem.advance_to(Cycle(t), &mut image);
        while mem.pop_event().is_some() {}
    });
}

fn bench_cache() {
    let cfg = SystemConfig::table2();
    let mut h = CacheHierarchy::new(&cfg);
    h.access(
        0,
        LineAddr(1),
        AccessKind::Load,
        Some(([0u8; 64], false)),
        150,
    );
    bench("cache_hit_l1", || {
        black_box(
            h.access(0, LineAddr(1), AccessKind::Load, None, 150)
                .latency,
        );
    });

    let mut h = CacheHierarchy::new(&SystemConfig::small());
    let mut i = 0u64;
    bench("cache_miss_fill_evict", || {
        i += 1;
        black_box(
            h.access(
                0,
                LineAddr(i % 8192),
                AccessKind::Load,
                Some(([0u8; 64], true)),
                150,
            )
            .latency,
        );
    });
}

fn bench_wpq() {
    let cfg = SystemConfig::table2();
    let mut mem = MemSystem::new(&cfg);
    let mut image = MemoryImage::new();
    let mut t = 0u64;
    bench("wpq_submit_drain", || {
        t += 100;
        let line = LineAddr(PM_BASE / 64 + t % 1024);
        mem.submit(
            PersistOp::new(PersistKind::Dpo, line, [0u8; 64], None),
            Cycle(t),
        );
        mem.advance_to(Cycle(t), &mut image);
        while mem.pop_event().is_some() {}
    });
}

fn bench_image() {
    // The hot loop of every simulated store: byte writes that hit the
    // image's last-page cache.
    let mut image = MemoryImage::new();
    let mut i = 0u64;
    bench("image_write_same_page", || {
        i += 1;
        image.write_u64(PmAddr(PM_BASE + (i % 500) * 8), i);
    });

    // Page-index probes: a strided walk that misses the last-page cache on
    // every access.
    let mut image = MemoryImage::new();
    for p in 0..512u64 {
        image.write_u64(PmAddr(PM_BASE + p * 4096), p);
    }
    let mut i = 0u64;
    bench("image_read_strided_pages", || {
        i += 1;
        black_box(image.read_u64(PmAddr(PM_BASE + (i % 512) * 4096)));
    });

    // Line-sized copies that straddle a page boundary exercise the
    // split-write path.
    let mut image = MemoryImage::new();
    let buf = [0xabu8; 64];
    let mut i = 0u64;
    bench("image_write_page_boundary", || {
        i += 1;
        image.write(PmAddr(PM_BASE + (i % 64) * 4096 + 4096 - 32), &buf);
    });
}

fn bench_store_forward() {
    // read_for_fill against a WPQ holding many queued lines: one probe of
    // the per-channel line index.
    let cfg = SystemConfig::table2();
    let mut mem = MemSystem::new(&cfg);
    let image = MemoryImage::new();
    for i in 0..64u64 {
        mem.submit(
            PersistOp::new(
                PersistKind::Dpo,
                LineAddr(PM_BASE / 64 + i),
                [7u8; 64],
                None,
            ),
            Cycle(0),
        );
    }
    let mut i = 0u64;
    bench("wpq_store_forward_probe", || {
        i += 1;
        black_box(mem.read_for_fill(LineAddr(PM_BASE / 64 + i % 128), &image));
    });
}

fn bench_log() {
    let mut h = RecordHeader::new(Rid::new(3, 99), Some(PmAddr(0x8000_1000)));
    for i in 0..7 {
        h.push_entry(LineAddr(0x200_0000 + i));
    }
    bench("record_header_encode_decode", || {
        let bytes = black_box(h.encode());
        black_box(RecordHeader::decode(&bytes));
    });
}

fn bench_deplist() {
    bench("deplist_insert_broadcast", || {
        let mut d = DepLists::new(4, 128, 4);
        for i in 0..64 {
            d.insert(Rid::new(0, i));
            if i > 0 {
                d.add_dep(Rid::new(0, i), Rid::new(0, i - 1));
            }
        }
        for i in 0..64 {
            d.get_mut(Rid::new(0, i)).unwrap().done = true;
            d.remove(Rid::new(0, i));
            black_box(d.clear_dep_everywhere(Rid::new(0, i)));
        }
    });
}

fn bench_bloom() {
    let mut bf = BloomFilter::new(8 * 1024);
    let mut i = 0u64;
    bench("bloom_insert_probe", || {
        i += 1;
        bf.insert(LineAddr(i));
        black_box(bf.may_contain(LineAddr(i + 1)));
    });
}

fn bench_fingerprint() {
    // The cache key computation run_grid performs once per cell before
    // the worker pool starts: canonical serialization + two-lane hash of
    // the complete spec.
    let spec = asap_workloads::WorkloadSpec::new(asap_workloads::BenchId::Tpcc, SchemeKind::Asap)
        .with_threads(8)
        .with_value_bytes(2048);
    bench("spec_fingerprint", || {
        black_box(black_box(&spec).fingerprint());
    });

    // The raw hash over a cell-sized canonical buffer, isolating the
    // mixing loop from the serialization above.
    let bytes = vec![0x5au8; 256];
    bench("fingerprint_hash_256b", || {
        black_box(asap_sim::fingerprint::hash_bytes(black_box(&bytes)));
    });
}

fn bench_runcache() {
    use asap_bench::runcache::{insert, lookup, RunCacheConfig};

    // One small real result, inserted into a hermetic disk store.
    let spec = asap_workloads::WorkloadSpec::small(asap_workloads::BenchId::Q, SchemeKind::Asap)
        .with_ops(10);
    let result = asap_workloads::run(&spec);
    let fp = spec.fingerprint();
    let dir = std::env::temp_dir().join(format!("asap-runcache-micro-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunCacheConfig::disk_only(&dir, 64);
    insert(&fp, &result, &cfg);

    // A disk hit: read + lossless parse + mtime touch of one cell file.
    bench("runcache_disk_hit", || {
        black_box(lookup(black_box(&fp), &cfg).is_some());
    });

    // An insert: serialize + atomic write + cap scan (the store holds a
    // single file, so this is the fixed per-cell overhead floor).
    bench("runcache_disk_insert", || {
        insert(black_box(&fp), black_box(&result), &cfg);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_snapshot() {
    // CoW image snapshot: a refcounted pointer-table copy whose cost is
    // O(touched pages), not O(bytes) — 512 pages here.
    let mut image = MemoryImage::new();
    for p in 0..512u64 {
        image.write_u64(PmAddr(PM_BASE + p * 4096), p);
    }
    bench("image_snapshot_512p", || {
        black_box(image.snapshot());
    });

    // First write after a snapshot pays the copy-on-write page
    // materialization (one 4KB copy) on top of the pointer-table copy.
    let mut i = 0u64;
    bench("image_snapshot_cow_write", || {
        i += 1;
        let s = image.snapshot();
        image.write_u64(PmAddr(PM_BASE + (i % 512) * 4096), i);
        black_box(&s);
    });

    // Machine snapshot and fork (restore): the sweep driver's per-cadence
    // and per-crash-point costs on a small-config machine with live
    // cache, WPQ, scheme, and image state.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
    let a = m.pm_alloc(64 * 64).unwrap();
    for i in 0..64u64 {
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 64 * 64), i);
            ctx.end_region();
        });
    }
    bench("machine_snapshot_small", || {
        black_box(m.snapshot());
    });
    let snap = m.snapshot();
    bench("machine_restore_small", || {
        m.restore(&snap);
    });
}

fn bench_sweep() {
    // The sweep engine's two per-fork restore shapes, isolated from the
    // driver. `far` stands in for a thinned-spine cadence snapshot a full
    // tail behind the crash point; `near` for a refinement leaf one step
    // away. The gap between the two is the work the snapshot tree
    // removes from every fork.
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
    let a = m.pm_alloc(64 * 64).unwrap();
    let region = |m: &mut Machine, i: u64| {
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 64 * 64), i);
            ctx.end_region();
        });
    };
    for i in 0..8 {
        region(&mut m, i);
    }
    let far = m.snapshot();
    for i in 8..63 {
        region(&mut m, i);
    }
    let near = m.snapshot();

    // Flat cadence: restore the cadence snapshot, replay the tail of
    // regions up to the crash point.
    bench_with("sweep_restore_flat_tail", 20, 200, || {
        m.restore(&far);
        for i in 8..63 {
            region(&mut m, i);
        }
    });
    // Snapshot tree: restore the refinement leaf adjacent to the point.
    bench_with("sweep_restore_tree_leaf", 20, 200, || {
        m.restore(&near);
        region(&mut m, 63);
    });

    // Send-snapshot fork dispatch: hand a snapshot to a worker thread
    // and restore it into that worker's scratch machine — the fixed
    // cross-thread cost `ASAP_SWEEP_JOBS` pays per chunk. The snapshot
    // sits behind a `Mutex` (it is `Send` but not `Sync`, because the
    // image keeps `Cell` page caches) exactly as the sweep spine does.
    let snap = Mutex::new(near);
    let scratch = Mutex::new(Machine::new(MachineConfig::small(SchemeKind::Asap, 1)));
    bench_with("snapshot_fork_dispatch", 10, 100, || {
        std::thread::scope(|s| {
            s.spawn(|| {
                let snap = snap.lock().unwrap();
                scratch.lock().unwrap().restore(&snap);
            });
        });
    });
}

fn bench_transaction() {
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 1));
    let a = m.pm_alloc(64 * 16).unwrap();
    let mut i = 0u64;
    bench("asap_small_transaction", || {
        i += 1;
        m.run_thread(0, |ctx| {
            ctx.begin_region();
            ctx.write_u64(a.offset(i % 16 * 64), i);
            ctx.end_region();
        });
    });
}

fn main() {
    bench_events();
    bench_domains();
    bench_cache();
    bench_image();
    bench_wpq();
    bench_store_forward();
    bench_log();
    bench_deplist();
    bench_bloom();
    bench_fingerprint();
    bench_runcache();
    bench_snapshot();
    bench_sweep();
    bench_transaction();
}
