//! §7.4: sensitivity to LH-WPQ size.
//!
//! ASAP with a 16-entry/channel LH-WPQ runs at 0.78× its 128-entry
//! throughput in the paper, yet still beats the synchronous hardware
//! baselines using 128 entries. A full LH-WPQ stalls a region's first LPO
//! until some region commits and releases its slot.

use asap_bench::{benches, emit_wallclock, fig_spec, geomean, header, row, run_grid};
use asap_core::scheme::SchemeKind;
use asap_workloads::{BenchId, WorkloadSpec};

/// §7.4 needs enough concurrently-uncommitted regions to pressure the
/// LH-WPQ: run with 16 threads (close to the paper's 18 cores).
const THREADS: u32 = 16;

fn asap_with_wpq(bench: BenchId, entries: u32) -> WorkloadSpec {
    let mut spec = fig_spec(bench, SchemeKind::Asap).with_threads(THREADS);
    spec.system = spec.system.with_lh_wpq_entries(entries);
    spec
}

fn main() {
    let t0 = std::time::Instant::now();
    println!("\n=== Section 7.4: LH-WPQ size sensitivity (normalized to ASAP-128, 16 threads) ===");
    header(
        "bench",
        &["ASAP-128", "ASAP-4", "ASAP-1", "HWUndo", "HWRedo"],
    );
    // Cell layout per bench: ASAP-128 baseline, ASAP-4, ASAP-1, HWUndo,
    // HWRedo.
    let the_benches = benches(&BenchId::all());
    let specs: Vec<_> = the_benches
        .iter()
        .flat_map(|bench| {
            [
                fig_spec(*bench, SchemeKind::Asap).with_threads(THREADS),
                asap_with_wpq(*bench, 4),
                asap_with_wpq(*bench, 1),
                fig_spec(*bench, SchemeKind::HwUndo).with_threads(THREADS),
                fig_spec(*bench, SchemeKind::HwRedo).with_threads(THREADS),
            ]
        })
        .collect();
    let results = run_grid(&specs);
    let mut geos = vec![Vec::new(); 4];
    for (ci, cell) in results.chunks(5).enumerate() {
        let base = &cell[0];
        let mut cells = vec!["1.00".to_string()];
        for (i, r) in cell[1..].iter().enumerate() {
            let s = r.speedup_over(base);
            geos[i].push(s);
            cells.push(format!("{s:.2}"));
        }
        row(the_benches[ci].label(), &cells);
    }
    row(
        "GeoMean",
        &std::iter::once("1.00".to_string())
            .chain(geos.iter().map(|g| format!("{:.2}", geomean(g))))
            .collect::<Vec<_>>(),
    );
    println!("(paper: a 16-entry LH-WPQ runs at 0.78x yet still beats HWUndo/HWRedo)");
    emit_wallclock("sec74_lhwpq", t0.elapsed(), &[&results]);
}
