//! §7.4: sensitivity to LH-WPQ size.
//!
//! ASAP with a 16-entry/channel LH-WPQ runs at 0.78× its 128-entry
//! throughput in the paper, yet still beats the synchronous hardware
//! baselines using 128 entries. A full LH-WPQ stalls a region's first LPO
//! until some region commits and releases its slot.

use asap_bench::{benches, fig_spec, geomean, header, row};
use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId};

/// §7.4 needs enough concurrently-uncommitted regions to pressure the
/// LH-WPQ: run with 16 threads (close to the paper's 18 cores).
const THREADS: u32 = 16;

fn main() {
    println!("\n=== Section 7.4: LH-WPQ size sensitivity (normalized to ASAP-128, 16 threads) ===");
    header(
        "bench",
        &["ASAP-128", "ASAP-4", "ASAP-1", "HWUndo", "HWRedo"],
    );
    let mut geos = vec![Vec::new(); 4];
    for bench in benches(&BenchId::all()) {
        let base = run(&fig_spec(bench, SchemeKind::Asap).with_threads(THREADS));
        let mut cells = vec!["1.00".to_string()];
        for (i, entries) in [4u32, 1].iter().enumerate() {
            let mut spec = fig_spec(bench, SchemeKind::Asap).with_threads(THREADS);
            spec.system = spec.system.with_lh_wpq_entries(*entries);
            let r = run(&spec).speedup_over(&base);
            geos[i].push(r);
            cells.push(format!("{r:.2}"));
        }
        for (i, scheme) in [SchemeKind::HwUndo, SchemeKind::HwRedo].iter().enumerate() {
            let r = run(&fig_spec(bench, *scheme).with_threads(THREADS)).speedup_over(&base);
            geos[2 + i].push(r);
            cells.push(format!("{r:.2}"));
        }
        row(bench.label(), &cells);
    }
    row(
        "GeoMean",
        &std::iter::once("1.00".to_string())
            .chain(geos.iter().map(|g| format!("{:.2}", geomean(g))))
            .collect::<Vec<_>>(),
    );
    println!("(paper: a 16-entry LH-WPQ runs at 0.78x yet still beats HWUndo/HWRedo)");
}
