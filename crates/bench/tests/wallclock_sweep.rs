//! Regression: consecutive wall-clock records in one process must not
//! repeat each other's phase totals (the `crash_sweep_legacy` record used
//! to re-report `crash_sweep`'s `simulate_us`/`cells_timed`, because the
//! scoped-timer totals were process-cumulative and never taken). Each
//! record now *takes* the totals, so back-to-back emits report disjoint
//! intervals. Also covers the sweep-throughput fields
//! (`crash_points`/`points_per_sec`) the `ASAP_PERF_GATE` check reads.
//!
//! One `#[test]`: the phase totals are process-global, so a parallel test
//! thread would race the interval assertions.

use std::time::Duration;

use asap_bench::{emit_wallclock_record, run_grid_jobs};
use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_workloads::{BenchId, WorkloadSpec};

fn u64_field(rec: &Value, key: &str) -> Option<u64> {
    rec.get(key).and_then(Value::as_u64)
}

#[test]
fn consecutive_records_own_their_phase_intervals() {
    let tmp = std::env::temp_dir().join(format!("asap-wallclock-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let path = tmp.join("wallclock.json");

    // One simulated grid puts real time into the Simulate phase.
    let specs = [WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(10)];
    let grid = run_grid_jobs(&specs, 1);

    // First record (a sweep one, with throughput fields), then a second
    // emit with *no* simulation in between — the leaked-totals shape.
    emit_wallclock_record(
        &path,
        "sweep_a",
        Duration::from_millis(80),
        &[&grid],
        Some(40),
    )
    .expect("first record lands");
    emit_wallclock_record(&path, "legacy_b", Duration::from_millis(5), &[&grid], None)
        .expect("second record lands");

    let body = std::fs::read_to_string(&path).unwrap();
    let parsed = json::parse(&body).expect("trajectory parses");
    let recs = parsed.as_array().expect("array of records");
    assert_eq!(recs.len(), 2);
    let a = &recs[0];
    let b = &recs[1];
    assert_eq!(a.get("figure").and_then(Value::as_str), Some("sweep_a"));
    assert_eq!(b.get("figure").and_then(Value::as_str), Some("legacy_b"));

    // The first record owns the grid's simulate time; the second emit ran
    // no cells, so its interval must be empty — not a repeat of the
    // first's totals.
    let pa = a.get("phases").expect("first record embeds phases");
    let pb = b.get("phases").expect("second record embeds phases");
    assert!(
        u64_field(pa, "cells_timed") >= Some(1),
        "the grid's cell was timed into the first record: {pa:?}"
    );
    assert_eq!(
        u64_field(pb, "cells_timed"),
        Some(0),
        "no cells ran between the emits: {pb:?}"
    );
    assert_eq!(
        u64_field(pb, "simulate_us"),
        Some(0),
        "no simulate time accrued between the emits: {pb:?}"
    );

    // Sweep-throughput fields: present on the sweep record with the
    // right arithmetic, absent on the plain record.
    assert_eq!(u64_field(a, "crash_points"), Some(40));
    let pps = a
        .get("points_per_sec")
        .and_then(Value::as_f64)
        .expect("points_per_sec present");
    assert!((pps - 40.0 / 0.08).abs() < 1.0, "40 points / 0.08s: {pps}");
    assert!(b.get("crash_points").is_none());
    assert!(b.get("points_per_sec").is_none());

    let _ = std::fs::remove_dir_all(&tmp);
}
