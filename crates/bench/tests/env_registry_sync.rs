//! Every `ASAP_`-prefixed environment variable read anywhere in the
//! workspace must be listed in [`asap_sim::KNOWN_ASAP_ENV`] — otherwise
//! the unknown-variable warning would fire on a knob the code actually
//! honors (or worse, a new knob would be unlisted and untypo-checked).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rs_files(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn every_env_read_is_registered() {
    // CARGO_MANIFEST_DIR of this crate is crates/bench.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    rs_files(&root, &mut files);
    assert!(files.len() > 20, "workspace walk found source files");

    // `(variable, file)` for every `"ASAP_*"` literal on a line that
    // reads the environment.
    let mut reads: BTreeSet<(String, String)> = BTreeSet::new();
    for f in &files {
        let Ok(text) = std::fs::read_to_string(f) else {
            continue;
        };
        for line in text.lines() {
            if !line.contains("env::var") {
                continue;
            }
            let mut rest = line;
            while let Some(i) = rest.find("\"ASAP_") {
                let lit = &rest[i + 1..];
                let end = lit.find('"').unwrap_or(lit.len());
                reads.insert((lit[..end].to_string(), f.display().to_string()));
                rest = &lit[end..];
            }
        }
    }

    let mut seen = BTreeSet::new();
    for (var, file) in &reads {
        assert!(
            asap_sim::KNOWN_ASAP_ENV.contains(&var.as_str()),
            "{file} reads {var}, which is missing from KNOWN_ASAP_ENV"
        );
        seen.insert(var.as_str());
    }
    // The scan itself must be finding the real reads, old and new — an
    // empty or partial scan would pass the containment check vacuously.
    for known in [
        "ASAP_OPS",
        "ASAP_RUNCACHE",
        "ASAP_EVENTS",
        "ASAP_LOG",
        "ASAP_PROGRESS",
    ] {
        assert!(seen.contains(known), "scan should find a read of {known}");
    }
}
