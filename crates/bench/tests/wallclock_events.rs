//! The `wallclock_written` event (and stderr note) must fire only after
//! the atomic rename has succeeded — a failed write must leave no trace
//! claiming otherwise.
//!
//! One `#[test]`: the event sink is process-global.

use std::time::Duration;

use asap_bench::{emit_wallclock_to, run_grid_jobs};
use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_sim::obs::events;
use asap_workloads::{BenchId, WorkloadSpec};

#[test]
fn wallclock_written_only_after_successful_rename() {
    let tmp = std::env::temp_dir().join(format!("asap-wallclock-ev-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let stream = tmp.join("events.ndjson");
    events::set_sink(Some(&stream));

    let specs = [WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(10)];
    let grid = run_grid_jobs(&specs, 1);

    // Failure path: the parent directory does not exist, so the
    // temp-file write fails before any rename. (chmod tricks don't work
    // here — CI may run as root, which ignores permission bits.)
    let bad = tmp.join("no-such-dir").join("wallclock.json");
    let err = emit_wallclock_to(&bad, "figtest", Duration::from_millis(5), &[&grid]);
    assert!(err.is_err(), "missing parent dir must fail the write");

    // Success path: same grid, writable location.
    let good = tmp.join("wallclock.json");
    emit_wallclock_to(&good, "figtest", Duration::from_millis(5), &[&grid])
        .expect("writable path succeeds");
    events::set_sink(None);

    // Exactly one wallclock_written record, and it names the path that
    // actually landed.
    let text = std::fs::read_to_string(&stream).unwrap();
    let written: Vec<Value> = text
        .lines()
        .map(|l| json::parse(l).expect("record parses"))
        .filter(|v| v.get("ev").and_then(Value::as_str) == Some("wallclock_written"))
        .collect();
    assert_eq!(written.len(), 1, "failed write must not emit the event");
    assert_eq!(
        written[0].get("figure").and_then(Value::as_str),
        Some("figtest")
    );
    assert_eq!(
        written[0].get("path").and_then(Value::as_str),
        Some(good.display().to_string().as_str())
    );

    // The trajectory file itself parses and carries the phases profile.
    let body = std::fs::read_to_string(&good).unwrap();
    let parsed = json::parse(&body).expect("trajectory parses");
    let rec = parsed
        .as_array()
        .and_then(<[Value]>::first)
        .expect("one record");
    assert_eq!(rec.get("figure").and_then(Value::as_str), Some("figtest"));
    let phases = rec.get("phases").expect("record embeds phases");
    assert!(phases.get("simulate_us").and_then(Value::as_u64).is_some());
    assert!(phases.get("cells_timed").and_then(Value::as_u64).is_some());

    let _ = std::fs::remove_dir_all(&tmp);
}
