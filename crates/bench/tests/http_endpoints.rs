//! Integration tests for the live observability endpoint
//! (`asap_sim::obs::http` + the bench routes): every endpoint answers
//! over a real loopback socket, malformed input gets clean error codes,
//! and — the load-bearing claim — a subscriber that stops reading is
//! dropped with accounting while the worker pool finishes unimpeded.
//!
//! One `#[test]` on purpose: the metrics registry, events hub, and
//! progress slot are process-global, so parallel test fns would race.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use asap_bench::{obs_routes, run_grid_with, runcache::RunCacheConfig};
use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_sim::obs::events::{self, HubWait};
use asap_sim::obs::http::{Server, MAX_REQUEST_LINE};
use asap_sim::obs::metrics;
use asap_workloads::{BenchId, WorkloadSpec};

/// Sends raw request bytes and returns the full response as text.
fn send_raw(addr: &str, req: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(req).expect("request written");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// A well-formed GET; returns `(status, body)`.
fn get(addr: &str, path: &str) -> (u16, String) {
    let resp = send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    let status: u16 = resp
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn endpoints_serve_and_slow_clients_never_stall_the_pool() {
    let server = Server::start("127.0.0.1:0", obs_routes()).expect("bind loopback");
    let addr = server.addr().to_string();

    // The hub alone turns the event stream on — cell records will flow
    // to /events subscribers with no ASAP_EVENTS file sink configured.
    assert!(events::enabled());

    // --- Request handling edge cases (quiesced server) --------------------
    let (status, _) = get(&addr, "/no/such/endpoint");
    assert_eq!(status, 404);
    assert!(send_raw(&addr, b"POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
    assert!(send_raw(&addr, b"total garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
    // Partial request: line cut mid-path, then EOF.
    assert!(send_raw(&addr, b"GET /metr").starts_with("HTTP/1.1 400"));
    // Oversized request line, no terminator — bounded memory, clean 431.
    let mut big = b"GET /".to_vec();
    big.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 64));
    assert!(send_raw(&addr, &big).starts_with("HTTP/1.1 431"));

    // --- Slow-client drop while a grid runs --------------------------------
    // A wedged socket client: asks for /events, then never reads.
    let mut wedged = TcpStream::connect(&addr).expect("connect");
    wedged
        .write_all(b"GET /events HTTP/1.1\r\n\r\n")
        .expect("request written");

    // And a deterministic laggard at the hub level: a 2-record queue
    // that is never drained (socket buffers would otherwise absorb a
    // small grid's records nondeterministically).
    let laggard = events::subscribe_with_cap(2).expect("hub active");
    let dropped_before = metrics::counter_value(events::DROPPED_COUNTER);

    let specs: Vec<WorkloadSpec> = [BenchId::Q, BenchId::Hm, BenchId::Ss]
        .into_iter()
        .flat_map(|b| {
            [SchemeKind::Asap, SchemeKind::SwUndo]
                .into_iter()
                .map(move |s| WorkloadSpec::new(b, s).with_threads(2).with_ops(20))
        })
        .collect();
    let t0 = Instant::now();
    let results = run_grid_with(&specs, 4, &RunCacheConfig::off());
    let grid_elapsed = t0.elapsed();
    assert_eq!(results.len(), specs.len());
    // The pool finished despite two non-consuming subscribers. The bound
    // is generous (CI machines stall), but a *blocked* pool would hang
    // this test outright — finishing at all is the real assertion.
    assert!(
        grid_elapsed < Duration::from_secs(120),
        "pool stalled: {grid_elapsed:?}"
    );

    // The laggard was dropped with accounting, not waited on.
    assert!(
        metrics::counter_value(events::DROPPED_COUNTER) > dropped_before,
        "laggard drop must increment {}",
        events::DROPPED_COUNTER
    );
    match laggard.wait(Duration::from_millis(50)) {
        HubWait::Ended { dropped } => assert!(dropped, "laggard must end as dropped"),
        _ => panic!("laggard must observe its drop"),
    }

    // --- Live endpoints after the grid -------------------------------------
    // /metrics.json first, then /metrics: the run counters are quiesced
    // between the two fetches (only obs.http.* move), so values must
    // agree across formats.
    let (status, body) = get(&addr, "/metrics.json");
    assert_eq!(status, 200);
    let snap = json::parse(&body).expect("/metrics.json parses");
    let lookups = snap
        .get("counters")
        .and_then(|c| c.get("pmem.image.lookups"))
        .and_then(Value::as_u64)
        .expect("pmem.image.lookups after a grid");
    assert!(lookups > 0);

    let (status, prom) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        prom.contains(&format!("asap_pmem_image_lookups_total {lookups}")),
        "Prometheus value must match the JSON snapshot"
    );
    assert!(prom.contains("# TYPE asap_obs_http_requests_total counter"));

    let (status, prog) = get(&addr, "/progress");
    assert_eq!(status, 200);
    let prog = json::parse(&prog).expect("/progress parses");
    assert!(matches!(prog.get("active"), Some(Value::Bool(true))));
    assert_eq!(
        prog.get("done").and_then(Value::as_u64),
        Some(specs.len() as u64)
    );
    assert_eq!(
        prog.get("total").and_then(Value::as_u64),
        Some(specs.len() as u64)
    );

    let (status, report) = get(&addr, "/report");
    assert_eq!(status, 200);
    assert!(report.starts_with("<!doctype html>"));
    assert!(report.contains("ASAP live run report"));

    // --- /events replays the grid from the hub backlog ---------------------
    let mut ev = TcpStream::connect(&addr).expect("connect");
    ev.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    ev.write_all(b"GET /events HTTP/1.1\r\n\r\n").unwrap();
    let mut tail = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match ev.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                tail.extend_from_slice(&chunk[..n]);
                if String::from_utf8_lossy(&tail).contains("\"ev\":\"grid_end\"") {
                    break;
                }
            }
            Err(_) => break, // idle stream: backlog fully replayed
        }
    }
    let tail = String::from_utf8_lossy(&tail);
    assert!(tail.starts_with("HTTP/1.1 200"));
    assert!(tail.contains("Transfer-Encoding: chunked"));
    for ev_kind in [
        "run_meta",
        "grid_start",
        "cell_start",
        "cell_end",
        "grid_end",
    ] {
        assert!(
            tail.contains(&format!("\"ev\":\"{ev_kind}\"")),
            "/events replay missing {ev_kind}"
        );
    }
    drop(ev);

    // --- Graceful shutdown with the wedged client still attached -----------
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "shutdown must not wait on the wedged client"
    );
    assert!(!events::enabled(), "hub deactivated with the server");
    drop(wedged);

    // Post-shutdown: connections are refused or reset, never hang.
    assert!(events::subscribe().is_none());
}
