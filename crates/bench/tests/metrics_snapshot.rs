//! The run-cache counters in the metrics registry must agree with the
//! legacy `Counters`/`summary_line` view — one source of truth, two
//! presentations.
//!
//! One `#[test]`: the registry and the run-cache tiers are
//! process-global, so a second test fn here would race the counts.

use asap_bench::{run_grid_with, runcache};
use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_sim::obs::metrics;
use asap_workloads::{BenchId, WorkloadSpec};

fn counter_in(snapshot: &Value, name: &str) -> u64 {
    snapshot
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn registry_snapshot_matches_legacy_summary() {
    let dir = std::env::temp_dir().join(format!("asap-metrics-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = runcache::RunCacheConfig::disk_only(&dir, 8);

    // Two distinct cells plus one duplicate (served by fan-out, not a
    // tier), twice: a cold pass that simulates and a warm pass served
    // from disk.
    let spec_q = WorkloadSpec::new(BenchId::Q, SchemeKind::Asap)
        .with_threads(2)
        .with_ops(20);
    let spec_hm = WorkloadSpec::new(BenchId::Hm, SchemeKind::SwUndo)
        .with_threads(2)
        .with_ops(20);
    let specs = vec![spec_q, spec_hm, spec_q];
    let base = runcache::counters();
    run_grid_with(&specs, 1, &cfg);
    run_grid_with(&specs, 2, &cfg);
    let c = runcache::counters();

    assert_eq!(c.misses - base.misses, 2, "cold pass simulates 2 cells");
    assert_eq!(c.disk_hits - base.disk_hits, 2, "warm pass hits disk");
    assert!(c.bytes_written > base.bytes_written);
    assert!(c.bytes_read > base.bytes_read);

    // The JSON snapshot carries the very same values under the
    // `runcache.*` names.
    let snap = json::parse(&metrics::snapshot_json()).expect("snapshot parses");
    assert_eq!(counter_in(&snap, "runcache.mem_hits"), c.mem_hits);
    assert_eq!(counter_in(&snap, "runcache.disk_hits"), c.disk_hits);
    assert_eq!(counter_in(&snap, "runcache.misses"), c.misses);
    assert_eq!(counter_in(&snap, "runcache.evicted"), c.evicted);
    assert_eq!(counter_in(&snap, "runcache.bytes_written"), c.bytes_written);
    assert_eq!(counter_in(&snap, "runcache.bytes_read"), c.bytes_read);
    // The duplicate cell was fanned out once per pass, counted only in
    // the registry (the legacy summary line ignores intra-grid dedup).
    assert_eq!(metrics::counter_value("runcache.dedup_fanout"), 2);
    // The worker pool accounted the simulated cells somewhere.
    assert_eq!(counter_in(&snap, "pool.worker0.cells"), 2);

    // And the summary line renders exactly that snapshot.
    let line = runcache::summary_line(&c);
    assert_eq!(
        line,
        format!(
            "runcache: {} hits ({} mem, {} disk), {} misses, {} evicted, {}B written, {}B read",
            c.hits(),
            c.mem_hits,
            c.disk_hits,
            c.misses,
            c.evicted,
            c.bytes_written,
            c.bytes_read
        )
    );
    let _ = std::fs::remove_dir_all(&dir);
}
