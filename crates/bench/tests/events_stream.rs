//! Integration tests for the NDJSON run-event stream (`asap-events-v1`).
//!
//! One `#[test]` on purpose: the event sink is process-global, so
//! parallel test fns in this binary would interleave their records.

use std::collections::HashMap;

use asap_bench::{run_grid_with, runcache::RunCacheConfig};
use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_sim::obs::events;
use asap_workloads::{BenchId, WorkloadSpec};

/// Removes the volatile `,"key":<digits>` field from a record line.
fn strip_u64_field(line: &str, key: &str) -> String {
    let pat = format!(",\"{key}\":");
    match line.find(&pat) {
        None => line.to_string(),
        Some(start) => {
            let rest = &line[start + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            format!("{}{}", &line[..start], &rest[end..])
        }
    }
}

/// The stream normalized for comparison across `ASAP_JOBS` values:
/// volatile keys (`seq`, `t_us`, `host_us`) stripped, plus `jobs` —
/// `grid_start` declares the worker count, which is exactly the knob
/// being varied — and lines sorted (records are ordered by completion,
/// which is scheduling-dependent).
fn normalize(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text
        .lines()
        .map(|l| {
            let l = strip_u64_field(l, "seq");
            let l = strip_u64_field(&l, "t_us");
            let l = strip_u64_field(&l, "host_us");
            strip_u64_field(&l, "jobs")
        })
        .collect();
    lines.sort();
    lines
}

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.get(key)
}

#[test]
fn stream_is_parseable_paired_and_jobs_invariant() {
    // Six distinct cells plus one duplicate spec; the cache is pinned off
    // so every cell really simulates (and the duplicate appears twice).
    let mut specs: Vec<WorkloadSpec> = [BenchId::Q, BenchId::Hm, BenchId::Ss]
        .into_iter()
        .flat_map(|b| {
            [SchemeKind::Asap, SchemeKind::SwUndo]
                .into_iter()
                .map(move |s| WorkloadSpec::new(b, s).with_threads(2).with_ops(20))
        })
        .collect();
    specs.push(specs[0]);

    let run_stream = |jobs: usize| -> String {
        let path = std::env::temp_dir().join(format!(
            "asap-events-stream-{}-j{jobs}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        events::set_sink(Some(&path));
        let res = run_grid_with(&specs, jobs, &RunCacheConfig::off());
        events::set_sink(None);
        assert_eq!(res.len(), specs.len());
        let text = std::fs::read_to_string(&path).expect("stream file written");
        let _ = std::fs::remove_file(&path);
        text
    };

    let serial = run_stream(1);
    let parallel = run_stream(4);

    for text in [&serial, &parallel] {
        let mut kinds: HashMap<String, usize> = HashMap::new();
        // cell_start / cell_end counts per fingerprint must balance.
        let mut starts: HashMap<String, usize> = HashMap::new();
        let mut ends: HashMap<String, usize> = HashMap::new();
        for line in text.lines() {
            let v = json::parse(line).expect("every record parses");
            let ev = field(&v, "ev")
                .and_then(Value::as_str)
                .expect("record has ev")
                .to_string();
            assert!(
                field(&v, "seq").and_then(Value::as_u64).is_some(),
                "record has seq"
            );
            assert!(
                field(&v, "t_us").and_then(Value::as_u64).is_some(),
                "record has t_us"
            );
            match ev.as_str() {
                "cell_start" | "cell_end" => {
                    let fp = field(&v, "fp")
                        .and_then(Value::as_str)
                        .expect("cell record has fp")
                        .to_string();
                    assert!(field(&v, "bench").and_then(Value::as_str).is_some());
                    assert!(field(&v, "scheme").and_then(Value::as_str).is_some());
                    if ev == "cell_start" {
                        *starts.entry(fp).or_default() += 1;
                    } else {
                        assert_eq!(
                            field(&v, "outcome").and_then(Value::as_str),
                            Some("completed")
                        );
                        assert_eq!(field(&v, "cache").and_then(Value::as_str), Some("miss"));
                        assert!(field(&v, "host_us").and_then(Value::as_u64).is_some());
                        assert!(field(&v, "sim_cycles").and_then(Value::as_u64).unwrap() > 0);
                        *ends.entry(fp).or_default() += 1;
                    }
                }
                "grid_start" => {
                    assert_eq!(
                        field(&v, "schema").and_then(Value::as_str),
                        Some(events::SCHEMA)
                    );
                    assert_eq!(
                        field(&v, "cells").and_then(Value::as_u64),
                        Some(specs.len() as u64)
                    );
                }
                "grid_end" => {
                    assert_eq!(
                        field(&v, "cells").and_then(Value::as_u64),
                        Some(specs.len() as u64)
                    );
                }
                "run_meta" => {
                    // The stream header: first record of every stream.
                    assert_eq!(
                        field(&v, "schema").and_then(Value::as_str),
                        Some(events::SCHEMA)
                    );
                    assert!(field(&v, "build").and_then(Value::as_str).is_some());
                    assert!(field(&v, "jobs").and_then(Value::as_u64).is_some());
                    assert!(matches!(field(&v, "knobs"), Some(Value::Obj(_))));
                }
                other => panic!("unexpected record kind {other}"),
            }
            *kinds.entry(ev).or_default() += 1;
        }
        assert_eq!(kinds.get("run_meta"), Some(&1));
        assert_eq!(
            text.lines()
                .next()
                .map(|l| l.contains("\"ev\":\"run_meta\"")),
            Some(true),
            "run_meta heads the stream"
        );
        assert_eq!(kinds.get("grid_start"), Some(&1));
        assert_eq!(kinds.get("grid_end"), Some(&1));
        assert_eq!(kinds.get("cell_start"), Some(&specs.len()));
        assert_eq!(kinds.get("cell_end"), Some(&specs.len()));
        assert_eq!(starts, ends, "every cell_start has a matching cell_end");
    }

    // Modulo volatile keys and completion order, the stream must not
    // depend on the worker count.
    assert_eq!(normalize(&serial), normalize(&parallel));
}
