#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel harness equivalence (ASAP_JOBS=1 vs ASAP_JOBS=4)"
ASAP_JOBS=1 cargo test -q --test parallel_equivalence
ASAP_JOBS=4 cargo test -q --test parallel_equivalence

echo "==> telemetry run report (exporter round-trip validation)"
ASAP_TELEMETRY=1 ASAP_OPS=30 ASAP_THREADS=2 ASAP_REPORT_OUT=target/run_report.html \
  cargo run --release --example run_report
test -s target/run_report.html

echo "==> microbenchmarks build (run manually: cargo bench --bench micro)"
cargo bench -p asap-bench --bench micro --no-run

echo "==> figure smoke run (serial fig7, HM only)"
SMOKE_START=$(date +%s.%N)
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= \
  cargo bench -p asap-bench --bench fig7_speedup >/dev/null
SMOKE_SECS=$(awk "BEGIN{printf \"%.3f\", $(date +%s.%N) - $SMOKE_START}")
echo "    serial fig7 smoke: ${SMOKE_SECS}s"

echo "==> run-cache smoke (disk tier: second pass all hits, stdout identical)"
RC_DIR=$(mktemp -d)
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= \
  ASAP_RUNCACHE=disk ASAP_RUNCACHE_DIR="$RC_DIR" \
  cargo bench -p asap-bench --bench fig7_speedup >target/runcache_pass1.out 2>/dev/null
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= \
  ASAP_RUNCACHE=disk ASAP_RUNCACHE_DIR="$RC_DIR" \
  cargo bench -p asap-bench --bench fig7_speedup >target/runcache_pass2.out 2>target/runcache_pass2.err
cmp target/runcache_pass1.out target/runcache_pass2.out \
  || { echo "RUNCACHE FAILURE: cached stdout differs from fresh run" >&2; exit 1; }
grep -q ", 0 misses" target/runcache_pass2.err \
  || { echo "RUNCACHE FAILURE: second pass was not served entirely from cache" >&2; \
       grep "runcache:" target/runcache_pass2.err >&2 || true; exit 1; }
rm -rf "$RC_DIR"
echo "    cached rerun byte-identical, all cells hit"

echo "==> observability smoke (NDJSON stream valid, stdout untouched)"
EV_FILE=$(mktemp -u)
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= \
  ASAP_EVENTS="$EV_FILE" ASAP_PROGRESS=off \
  cargo bench -p asap-bench --bench fig7_speedup >target/obs_on.out 2>/dev/null
cargo run --release -q --example events_check -- "$EV_FILE" \
  || { echo "OBS FAILURE: event stream invalid" >&2; exit 1; }
cmp target/obs_on.out target/runcache_pass1.out \
  || { echo "OBS FAILURE: stdout changed with ASAP_EVENTS on (jobs=1)" >&2; exit 1; }
rm -f "$EV_FILE"
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=4 ASAP_WALLCLOCK= \
  ASAP_EVENTS="$EV_FILE" ASAP_PROGRESS=off \
  cargo bench -p asap-bench --bench fig7_speedup >target/obs_on_j4.out 2>/dev/null
cmp target/obs_on_j4.out target/runcache_pass1.out \
  || { echo "OBS FAILURE: stdout changed with ASAP_EVENTS on (jobs=4)" >&2; exit 1; }
rm -f "$EV_FILE"
echo "    event stream parseable and balanced; bench stdout byte-identical"

echo "==> obs-endpoint smoke (ASAP_HTTP live endpoints, stdout byte-identical)"
# Byte-identity first: quick fig7 passes with the server on must print
# exactly what the server-off pass (runcache_pass1.out) printed, at
# jobs 1 and 4. ASAP_RUNCACHE=off so the grid really runs.
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  ASAP_HTTP=127.0.0.1:0 \
  cargo bench -p asap-bench --bench fig7_speedup >target/obs_http_j1.out 2>/dev/null
cmp target/obs_http_j1.out target/runcache_pass1.out \
  || { echo "HTTP FAILURE: stdout changed with ASAP_HTTP on (jobs=1)" >&2; exit 1; }
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=4 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  ASAP_HTTP=127.0.0.1:0 \
  cargo bench -p asap-bench --bench fig7_speedup >target/obs_http_j4.out 2>/dev/null
cmp target/obs_http_j4.out target/runcache_pass1.out \
  || { echo "HTTP FAILURE: stdout changed with ASAP_HTTP on (jobs=4)" >&2; exit 1; }
# Live-endpoint fetches: a longer background run (bigger ops so the
# server is still up), port discovered from the stderr note, fetched
# with the std-only obs_client (no curl dependency in CI).
cargo build --release -q --example obs_client
HTTP_ERR=target/obs_http_live.err
: >"$HTTP_ERR"
ASAP_BENCHES=HM ASAP_OPS=2000 ASAP_JOBS=1 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  ASAP_HTTP=127.0.0.1:0 \
  cargo bench -p asap-bench --bench fig7_speedup >target/obs_http_live.out 2>"$HTTP_ERR" &
HTTP_PID=$!
ADDR=
for _ in $(seq 1 300); do
  ADDR=$(sed -n 's|.*http server listening on http://||p' "$HTTP_ERR" | head -1)
  [ -n "$ADDR" ] && break
  kill -0 "$HTTP_PID" 2>/dev/null || break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "HTTP FAILURE: server address never appeared on stderr" >&2; \
                    cat "$HTTP_ERR" >&2; kill "$HTTP_PID" 2>/dev/null || true; exit 1; }
./target/release/examples/obs_client "$ADDR" /metrics >target/obs_http_metrics.txt \
  || { echo "HTTP FAILURE: /metrics not 200" >&2; kill "$HTTP_PID" 2>/dev/null || true; exit 1; }
grep -q "^# TYPE asap_" target/obs_http_metrics.txt \
  || { echo "HTTP FAILURE: /metrics is not Prometheus exposition" >&2; exit 1; }
./target/release/examples/obs_client "$ADDR" /progress >target/obs_http_progress.json \
  || { echo "HTTP FAILURE: /progress not 200" >&2; kill "$HTTP_PID" 2>/dev/null || true; exit 1; }
grep -q '"active":true' target/obs_http_progress.json \
  || { echo "HTTP FAILURE: /progress JSON malformed" >&2; exit 1; }
./target/release/examples/obs_client "$ADDR" /events 4096 >target/obs_http_events.txt \
  || { echo "HTTP FAILURE: /events not 200" >&2; kill "$HTTP_PID" 2>/dev/null || true; exit 1; }
grep -q '"ev":"run_meta"' target/obs_http_events.txt \
  || { echo "HTTP FAILURE: /events tail missing run_meta header" >&2; exit 1; }
wait "$HTTP_PID" \
  || { echo "HTTP FAILURE: observed fig7 run failed" >&2; exit 1; }
echo "    endpoints live (200s), stdout byte-identical at jobs 1 and 4"

echo "==> intra-cell parallelism smoke (ASAP_CELL_JOBS=2 vs serial engine)"
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  ASAP_CELL_JOBS=2 \
  cargo bench -p asap-bench --bench fig7_speedup >target/cell_jobs.out 2>/dev/null
cmp target/cell_jobs.out target/runcache_pass1.out \
  || { echo "CELL-JOBS FAILURE: domain-parallel stdout differs from serial engine" >&2; exit 1; }
echo "    ASAP_CELL_JOBS=2 stdout byte-identical to serial"

echo "==> crash-point sweep smoke (CoW forks vs legacy re-runs, 32 points)"
# The example asserts every fork byte-identical to a full crash_after
# re-run, every recovery verified, and (at >= 32 points) the sweep at
# least 5x faster than the legacy path. ASAP_WALLCLOCK= keeps CI from
# appending host-dependent records to BENCH_WALLCLOCK.json.
ASAP_OPS=100 ASAP_THREADS=2 ASAP_CRASH_SWEEP=32 ASAP_WALLCLOCK= \
  cargo run --release -q --example crash_sweep >target/crash_sweep.out 2>target/crash_sweep.err
grep -q "all 32 forks identical to legacy re-runs" target/crash_sweep.out \
  || { echo "SWEEP FAILURE: fork equivalence line missing" >&2; \
       cat target/crash_sweep.err >&2; exit 1; }
sed -n 's/^crash_sweep: /    /p' target/crash_sweep.err

echo "==> parallel sweep smoke (1000 lifecycle points, ASAP_SWEEP_JOBS=2 vs serial)"
# Snapshot-tree sweep over a 1000-point lifecycle plan, run twice: serial
# and with two fork workers. Stdout must be byte-identical (determinism
# at any ASAP_SWEEP_JOBS), every point must recover, and on multi-CPU
# hosts the parallel pass must reach at least 2x the serial points/s
# (warn-only on 1-CPU hosts, where there is nothing to win).
ASAP_OPS=200 ASAP_THREADS=2 ASAP_CRASH_SWEEP=1000 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  cargo run --release -q --example crash_sweep >target/sweep_serial.out 2>target/sweep_serial.err
ASAP_OPS=200 ASAP_THREADS=2 ASAP_CRASH_SWEEP=1000 ASAP_WALLCLOCK= ASAP_RUNCACHE=off \
  ASAP_SWEEP_JOBS=2 \
  cargo run --release -q --example crash_sweep >target/sweep_par.out 2>target/sweep_par.err
cmp target/sweep_serial.out target/sweep_par.out \
  || { echo "SWEEP FAILURE: parallel stdout differs from serial" >&2; exit 1; }
grep -q "all 1000 crash points recovered" target/sweep_serial.out \
  || { echo "SWEEP FAILURE: not every lifecycle point recovered" >&2; \
       cat target/sweep_serial.err >&2; exit 1; }
SERIAL_SECS=$(sed -n 's/^crash_sweep: 1000 points in \([0-9.]*\)s.*/\1/p' target/sweep_serial.err)
PAR_SECS=$(sed -n 's/^crash_sweep: 1000 points in \([0-9.]*\)s.*/\1/p' target/sweep_par.err)
[ -n "$SERIAL_SECS" ] && [ -n "$PAR_SECS" ] \
  || { echo "SWEEP FAILURE: throughput lines missing from stderr" >&2; exit 1; }
SWEEP_SPEEDUP=$(awk "BEGIN{printf \"%.2f\", $SERIAL_SECS / ($PAR_SECS + 1e-9)}")
echo "    1000 points: serial ${SERIAL_SECS}s, 2 workers ${PAR_SECS}s (${SWEEP_SPEEDUP}x); stdout byte-identical"
FAST_ENOUGH=$(awk "BEGIN{print ($SERIAL_SECS >= 2 * $PAR_SECS) ? 1 : 0}")
if [ "$FAST_ENOUGH" != 1 ]; then
  if [ "$(nproc)" -ge 2 ]; then
    echo "SWEEP FAILURE: 2 workers only ${SWEEP_SPEEDUP}x over serial (need >= 2x)" >&2; exit 1
  fi
  echo "    (speedup gate skipped: single-CPU host)"
fi

# Opt-in perf gate: warn (exit 0) when the smoke run exceeds the threshold.
if [ -n "${ASAP_PERF_GATE:-}" ]; then
  LAST=$(python3 - <<'EOF'
import json, sys
try:
    # Warm records measured the memoized path, not the simulator; only
    # cold entries are comparable (records predating the cache tag count
    # as cold).
    entries = [e for e in json.load(open("BENCH_WALLCLOCK.json"))
               if e.get("figure") == "fig7_speedup"
               and e.get("cache", "cold") != "warm"]
    print(entries[-1]["host_seconds"] if entries else "")
except Exception:
    print("")
EOF
)
  OVER=$(awk "BEGIN{print ($SMOKE_SECS > $ASAP_PERF_GATE) ? 1 : 0}")
  if [ "$OVER" = 1 ]; then
    echo "PERF WARNING: serial fig7 smoke ${SMOKE_SECS}s exceeds gate ${ASAP_PERF_GATE}s" >&2
    if [ -n "$LAST" ]; then
      DELTA=$(awk "BEGIN{printf \"%+.3f\", $SMOKE_SECS - $LAST}")
      echo "PERF WARNING: delta vs last BENCH_WALLCLOCK.json fig7 entry (${LAST}s): ${DELTA}s" >&2
    fi
  else
    echo "    perf gate ok (<= ${ASAP_PERF_GATE}s)"
  fi
  # Sweep throughput: compare the last two cold crash_sweep records'
  # points_per_sec (the wallclock field emit_wallclock_sweep writes).
  SWEEP_PPS=$(python3 - <<'EOF'
import json
try:
    entries = [e for e in json.load(open("BENCH_WALLCLOCK.json"))
               if e.get("figure") == "crash_sweep"
               and e.get("cache", "cold") != "warm"
               and "points_per_sec" in e]
    if len(entries) >= 2:
        print(entries[-2]["points_per_sec"], entries[-1]["points_per_sec"])
except Exception:
    pass
EOF
)
  if [ -n "$SWEEP_PPS" ]; then
    read -r PPS_PREV PPS_LAST <<<"$SWEEP_PPS"
    PPS_SLOW=$(awk "BEGIN{print ($PPS_LAST * 2 < $PPS_PREV) ? 1 : 0}")
    if [ "$PPS_SLOW" = 1 ]; then
      echo "PERF WARNING: crash_sweep throughput fell from ${PPS_PREV} to ${PPS_LAST} points/s" >&2
    else
      echo "    perf gate ok (crash_sweep ${PPS_LAST} points/s, prev ${PPS_PREV})"
    fi
  fi
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
