#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel harness equivalence (ASAP_JOBS=1 vs ASAP_JOBS=4)"
ASAP_JOBS=1 cargo test -q --test parallel_equivalence
ASAP_JOBS=4 cargo test -q --test parallel_equivalence

echo "==> telemetry run report (exporter round-trip validation)"
ASAP_TELEMETRY=1 ASAP_OPS=30 ASAP_THREADS=2 ASAP_REPORT_OUT=target/run_report.html \
  cargo run --release --example run_report
test -s target/run_report.html

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
