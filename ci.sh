#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel harness equivalence (ASAP_JOBS=1 vs ASAP_JOBS=4)"
ASAP_JOBS=1 cargo test -q --test parallel_equivalence
ASAP_JOBS=4 cargo test -q --test parallel_equivalence

echo "==> telemetry run report (exporter round-trip validation)"
ASAP_TELEMETRY=1 ASAP_OPS=30 ASAP_THREADS=2 ASAP_REPORT_OUT=target/run_report.html \
  cargo run --release --example run_report
test -s target/run_report.html

echo "==> microbenchmarks build (run manually: cargo bench --bench micro)"
cargo bench -p asap-bench --bench micro --no-run

echo "==> figure smoke run (serial fig7, HM only)"
SMOKE_START=$(date +%s.%N)
ASAP_BENCHES=HM ASAP_OPS=10 ASAP_JOBS=1 ASAP_WALLCLOCK= \
  cargo bench -p asap-bench --bench fig7_speedup >/dev/null
SMOKE_SECS=$(awk "BEGIN{printf \"%.3f\", $(date +%s.%N) - $SMOKE_START}")
echo "    serial fig7 smoke: ${SMOKE_SECS}s"

# Opt-in perf gate: warn (exit 0) when the smoke run exceeds the threshold.
if [ -n "${ASAP_PERF_GATE:-}" ]; then
  LAST=$(python3 - <<'EOF'
import json, sys
try:
    entries = [e for e in json.load(open("BENCH_WALLCLOCK.json"))
               if e.get("figure") == "fig7_speedup"]
    print(entries[-1]["host_seconds"] if entries else "")
except Exception:
    print("")
EOF
)
  OVER=$(awk "BEGIN{print ($SMOKE_SECS > $ASAP_PERF_GATE) ? 1 : 0}")
  if [ "$OVER" = 1 ]; then
    echo "PERF WARNING: serial fig7 smoke ${SMOKE_SECS}s exceeds gate ${ASAP_PERF_GATE}s" >&2
    if [ -n "$LAST" ]; then
      DELTA=$(awk "BEGIN{printf \"%+.3f\", $SMOKE_SECS - $LAST}")
      echo "PERF WARNING: delta vs last BENCH_WALLCLOCK.json fig7 entry (${LAST}s): ${DELTA}s" >&2
    fi
  else
    echo "    perf gate ok (<= ${ASAP_PERF_GATE}s)"
  fi
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
