//! Umbrella crate for the ASAP reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency root.

pub use asap_core as core;
pub use asap_mem as mem;
pub use asap_pmem as pmem;
pub use asap_sim as sim;
pub use asap_workloads as workloads;
