//! Self-contained HTML run report: one telemetry-enabled simulation,
//! rendered as a single file with inline-SVG sparklines for every
//! occupancy series, the per-region stall breakdown, the hottest PM
//! lines, and the region commit timeline. No external assets, no
//! JavaScript — open it anywhere, attach it to a bug report.
//!
//! ```sh
//! cargo run --release --example run_report
//! ```
//!
//! Environment knobs:
//!
//! - `ASAP_OPS` / `ASAP_THREADS` — workload scale (defaults 40 / 2)
//! - `ASAP_TELEMETRY_PERIOD` — sampling period in cycles
//! - `ASAP_REPORT_OUT` — output path (default `target/run_report.html`)
//!
//! Telemetry is forced on (this report *is* the telemetry consumer).
//! Every JSON export consumed here is round-tripped through the in-tree
//! parser first — parse, re-emit, re-parse, compare — so this example
//! doubles as an end-to-end validation of the exporters; it exits
//! nonzero if any export fails to round-trip.

use std::fmt::Write as _;
use std::process::ExitCode;

use asap_core::scheme::SchemeKind;
use asap_sim::json::{self, Value};
use asap_sim::obs::{metrics, phase};
use asap_sim::TelemetrySettings;
use asap_workloads::{run, BenchId, RunResult, WorkloadSpec};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `label` JSON, re-emits it canonically, parses that again, and
/// requires the two values to be equal. Returns the parsed value.
fn validate_roundtrip(label: &str, text: &str) -> Result<Value, String> {
    let v = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    let again =
        json::parse(&v.to_json()).map_err(|e| format!("{label}: re-emitted JSON broken: {e}"))?;
    if v != again {
        return Err(format!("{label}: JSON round-trip changed the value"));
    }
    Ok(v)
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// An inline-SVG sparkline for one series: a polyline over the sample
/// points, scaled into a fixed 600x60 box, with the peak value printed.
fn sparkline(times: &[f64], values: &[f64]) -> String {
    const W: f64 = 600.0;
    const H: f64 = 60.0;
    if times.is_empty() {
        return "<em>no samples</em>".into();
    }
    let t0 = times[0];
    let t1 = times[times.len() - 1].max(t0 + 1.0);
    let vmax = values.iter().cloned().fold(0.0_f64, f64::max).max(1.0);
    let mut pts = String::new();
    for (t, v) in times.iter().zip(values) {
        let x = (t - t0) / (t1 - t0) * W;
        let y = H - (v / vmax) * (H - 4.0) - 2.0;
        let _ = write!(pts, "{x:.1},{y:.1} ");
    }
    format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\"/>\
         </svg> <span class=\"peak\">peak {vmax:.0}</span>",
        pts.trim_end()
    )
}

fn build_report(
    r: &RunResult,
    ts: &Value,
    lc: &Value,
    phases: &Value,
    metrics_snap: &Value,
) -> Result<String, String> {
    let mut h = String::new();
    h.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>ASAP run report</title>\n<style>\
         body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;color:#111}\
         h1{font-size:1.4em} h2{font-size:1.1em;margin-top:2em;\
         border-bottom:1px solid #ddd;padding-bottom:.2em}\
         table{border-collapse:collapse} td,th{padding:.2em .8em;\
         border:1px solid #ddd;text-align:right} th{background:#f5f5f5}\
         td:first-child,th:first-child{text-align:left}\
         .peak{color:#666;font-size:.85em}\
         .series{margin:.6em 0} .series b{display:inline-block;min-width:12em}\
         </style></head><body>\n",
    );

    let spec = &r.spec;
    let _ = writeln!(
        h,
        "<h1>ASAP run report — {} / {} </h1>\n\
         <p>{} threads, {} ops/thread, {}-byte payloads, seed {:#x}. \
         {} transactions in {} cycles ({:.3} tx/kcycle); {} PM media writes; \
         drained at cycle {}.</p>",
        html_escape(spec.bench.label()),
        html_escape(&spec.scheme.to_string()),
        spec.threads,
        spec.ops_per_thread,
        spec.value_bytes,
        spec.seed,
        r.tx,
        r.exec_cycles,
        r.throughput,
        r.pm_writes,
        r.drained_cycles,
    );

    // --- Occupancy sparklines --------------------------------------------
    let period = ts.get("period").and_then(Value::as_f64).unwrap_or(0.0);
    let decim = ts.get("decimations").and_then(Value::as_f64).unwrap_or(0.0);
    let times: Vec<f64> = ts
        .get("t")
        .and_then(Value::as_array)
        .ok_or("timeseries: missing t")?
        .iter()
        .filter_map(Value::as_f64)
        .collect();
    let series = ts
        .get("series")
        .and_then(Value::as_object)
        .ok_or("timeseries: missing series")?;
    let _ = writeln!(
        h,
        "<h2>Occupancy over virtual time</h2>\n\
         <p>{} samples, final period {} cycles ({} decimations).</p>",
        times.len(),
        period,
        decim
    );
    for (name, vals) in series {
        let vals: Vec<f64> = vals
            .as_array()
            .ok_or("timeseries: series not an array")?
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        let _ = writeln!(
            h,
            "<div class=\"series\"><b>{}</b> {}</div>",
            html_escape(name),
            sparkline(&times, &vals)
        );
    }

    // --- Stall breakdown --------------------------------------------------
    h.push_str(
        "<h2>Mean cycles per region</h2>\n<table><tr><th>component</th><th>cycles</th></tr>",
    );
    for (label, v) in [
        ("compute", r.stalls.compute),
        ("log full", r.stalls.log_full),
        ("WPQ backpressure", r.stalls.wpq_backpressure),
        ("dependency wait", r.stalls.dependency_wait),
        ("commit wait", r.stalls.commit_wait),
        ("total", r.stalls.total()),
    ] {
        let _ = write!(h, "<tr><td>{label}</td><td>{v:.1}</td></tr>");
    }
    h.push_str("</table>\n");

    // --- Hottest PM lines -------------------------------------------------
    h.push_str("<h2>Hottest PM lines</h2>\n<table><tr><th>line</th><th>media writes</th></tr>");
    for (line, n) in &r.hot_lines {
        let _ = write!(h, "<tr><td>{line:#x}</td><td>{n}</td></tr>");
    }
    h.push_str("</table>\n");

    // --- Commit timeline --------------------------------------------------
    let commits = lc
        .get("commits")
        .and_then(Value::as_array)
        .ok_or("lifecycle: missing commits")?;
    let audited = lc.get("audited").and_then(Value::as_f64).unwrap_or(0.0);
    let dropped = lc.get("dropped").and_then(Value::as_f64).unwrap_or(0.0);
    let _ = write!(
        h,
        "<h2>Region commit timeline</h2>\n\
         <p>{} commits audited against the dependency DAG ({} evicted \
         records); first {} shown.</p>\n\
         <table><tr><th>#</th><th>region</th><th>commit cycle</th></tr>",
        audited,
        dropped,
        commits.len().min(64)
    );
    for (i, c) in commits.iter().take(64).enumerate() {
        let pair = c.as_array().ok_or("lifecycle: commit not a pair")?;
        let rid = pair.first().and_then(Value::as_str).unwrap_or("?");
        let at = pair.get(1).and_then(Value::as_f64).unwrap_or(0.0);
        let _ = write!(
            h,
            "<tr><td>{}</td><td>{}</td><td>{at:.0}</td></tr>",
            i + 1,
            html_escape(rid)
        );
    }
    h.push_str("</table>\n");

    // --- Host profile -----------------------------------------------------
    h.push_str(
        "<h2>Host profile</h2>\n\
         <p>Where the <em>host</em> time of this process went (virtual-time \
         results are unaffected), plus the process-global metrics registry.</p>\n\
         <table><tr><th>phase</th><th>host &micro;s</th></tr>",
    );
    for key in [
        "fingerprint_us",
        "cache_probe_us",
        "simulate_us",
        "export_us",
    ] {
        let v = phases.get(key).and_then(Value::as_u64).unwrap_or(0);
        let _ = write!(h, "<tr><td>{}</td><td>{v}</td></tr>", &key[..key.len() - 3]);
    }
    let _ = writeln!(
        h,
        "<tr><td>cells timed</td><td>{}</td></tr></table>",
        phases
            .get("cells_timed")
            .and_then(Value::as_u64)
            .unwrap_or(0)
    );
    for (kind, unit) in [("counters", ""), ("gauges", " (max)")] {
        let Some(map) = metrics_snap.get(kind).and_then(Value::as_object) else {
            continue;
        };
        if map.is_empty() {
            continue;
        }
        let _ = write!(
            h,
            "<h3>{kind}{unit}</h3>\n<table><tr><th>name</th><th>value</th></tr>"
        );
        for (name, v) in map {
            let _ = write!(
                h,
                "<tr><td>{}</td><td>{}</td></tr>",
                html_escape(name),
                v.as_u64().unwrap_or(0)
            );
        }
        h.push_str("</table>\n");
    }

    h.push_str("</body></html>\n");
    Ok(h)
}

fn main() -> ExitCode {
    let telemetry = {
        let t = TelemetrySettings::from_env();
        if t.enabled {
            t
        } else {
            TelemetrySettings::enabled().with_period(t.period)
        }
    };
    let spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_threads(env_u64("ASAP_THREADS", 2) as u32)
        .with_ops(env_u64("ASAP_OPS", 40))
        .with_telemetry(telemetry);
    // Scoped like a grid cell so the host-profile section has a real
    // Simulate entry even for this single-run report.
    let r = {
        let _t = phase::scope(phase::Phase::Simulate);
        run(&spec)
    };

    // Validate every export through the in-tree parser before rendering.
    let validated = (|| -> Result<(Value, Value, Value, Value), String> {
        validate_roundtrip("stats", &r.stats.to_json())?;
        let ts = validate_roundtrip("timeseries", r.timeseries.as_deref().unwrap_or("null"))?;
        let lc = validate_roundtrip("lifecycle", r.lifecycle.as_deref().unwrap_or("null"))?;
        validate_roundtrip(
            "telemetry object",
            &r.telemetry_json().ok_or("telemetry object missing")?,
        )?;
        let phases = validate_roundtrip("phases", &phase::snapshot_json())?;
        let snap = validate_roundtrip("metrics", &metrics::snapshot_json())?;
        Ok((ts, lc, phases, snap))
    })();
    let (ts, lc, phases, snap) = match validated {
        Ok(v) => v,
        Err(e) => {
            eprintln!("run_report: export validation FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let html = match build_report(&r, &ts, &lc, &phases, &snap) {
        Ok(html) => html,
        Err(e) => {
            eprintln!("run_report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = std::env::var("ASAP_REPORT_OUT").unwrap_or_else(|_| "target/run_report.html".into());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &html) {
        eprintln!("run_report: could not write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "run_report: validated stats/timeseries/lifecycle/phases/metrics exports; \
         wrote {out} ({} bytes)",
        html.len()
    );
    ExitCode::SUCCESS
}
