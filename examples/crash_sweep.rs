//! Crash-point sweep smoke: one shared prefix, many forked crash points.
//!
//! Runs an `ASAP_CRASH_SWEEP`-point sweep (default 32) through the
//! copy-on-write snapshot path, checks every fork bit-for-bit against the
//! legacy one-full-run-per-point path, and records both wall clocks
//! (`crash_sweep` / `crash_sweep_legacy`) in `BENCH_WALLCLOCK.json`. Both
//! passes run with the result cache off, so the ratio compares simulation
//! work, not memoization. At 32+ points the sweep must come in at no more
//! than 1/5 of the legacy wall clock (asserted).
//!
//! ```sh
//! ASAP_CRASH_SWEEP=32 cargo run --release --example crash_sweep
//! ```
//!
//! The outcome table goes to stdout and is deterministic; the wall-clock
//! comparison goes to stderr (host-dependent, like every timing note).

use std::time::Instant;

use asap_bench::runcache::RunCacheConfig;
use asap_bench::{emit_wallclock, ops, run_crash_sweep_with, threads};
use asap_core::scheme::SchemeKind;
use asap_workloads::resultjson::results_identical;
use asap_workloads::{run, BenchId, RunResult, WorkloadSpec};

fn main() {
    let n_points: u64 = std::env::var("ASAP_CRASH_SWEEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    // The small system config keeps machine state O(touched): a snapshot
    // or restore under table2 geometry copies ~10MB of tag/slab arrays,
    // which at smoke scale would cost as much as re-simulating. Crash
    // sweeps probe recovery behavior, not figure timing, so the small
    // config is the right tool.
    let mut spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_threads(threads())
        .with_ops(ops());
    spec.system = asap_sim::SystemConfig::small();
    // Pilot: one uninterrupted sweep with no points measures the
    // post-setup persistent-write range, so the crash points land as
    // quantiles of the real `crash_after` coordinate rather than a guess.
    // Point placement is metadata a sweeping tool measures once and
    // reuses, so it stays outside the timed comparison.
    let total = asap_workloads::run_sweep(&spec, &[], u64::MAX).prefix_writes;
    let points: Vec<u64> = (1..=n_points)
        .map(|i| (i * total / n_points).max(1))
        .collect();
    // Snapshot cadence trades snapshot cost against fork replay distance;
    // an eighth of the write range keeps both well under one full run.
    let snap_every = (total / 8).max(1);

    let t0 = Instant::now();
    let sweep = run_crash_sweep_with(&spec, &points, snap_every, &RunCacheConfig::off());
    let sweep_elapsed = t0.elapsed();

    let t1 = Instant::now();
    let legacy: Vec<RunResult> = points
        .iter()
        .map(|&n| run(&spec.with_crash_after(n)))
        .collect();
    let legacy_elapsed = t1.elapsed();

    println!(
        "crash-point sweep: {} x {} ({} points, snapshot every {} writes)",
        spec.bench.label(),
        spec.scheme.name(),
        points.len(),
        snap_every
    );
    println!(
        "{:>12} {:>10} {:>12} {:>9} {:>9}",
        "crash_after", "outcome", "uncommitted", "replayed", "tx"
    );
    for p in &sweep.baseline.crash_points {
        println!(
            "{:>12} {:>10} {:>12} {:>9} {:>9}",
            p.crash_after,
            if p.crashed { "crashed" } else { "completed" },
            p.uncommitted,
            p.replayed,
            p.tx
        );
    }

    // Every fork must be byte-identical to the legacy re-run path, every
    // point must have fired, and every crash must have a recovery report
    // (the per-scheme invariants already ran inside both paths).
    for ((f, l), p) in sweep
        .forks
        .iter()
        .zip(&legacy)
        .zip(&sweep.baseline.crash_points)
    {
        assert!(
            results_identical(f, l),
            "fork at {} diverged from the legacy crash_after path",
            p.crash_after
        );
        assert!(p.crashed, "point {} did not fire", p.crash_after);
        assert!(
            f.recovery.is_some(),
            "point {} has no recovery report",
            p.crash_after
        );
    }
    println!(
        "all {} forks identical to legacy re-runs; all recoveries verified",
        points.len()
    );

    emit_wallclock("crash_sweep", sweep_elapsed, &[&sweep.forks]);
    emit_wallclock("crash_sweep_legacy", legacy_elapsed, &[&legacy]);
    let speedup = legacy_elapsed.as_secs_f64() / sweep_elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "crash_sweep: sweep {:.3}s vs legacy {:.3}s ({speedup:.1}x)",
        sweep_elapsed.as_secs_f64(),
        legacy_elapsed.as_secs_f64()
    );
    if points.len() >= 32 {
        assert!(
            speedup >= 5.0,
            "sweep must be at least 5x faster than {} legacy re-runs (got {speedup:.2}x)",
            points.len()
        );
    }
}
