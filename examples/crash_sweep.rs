//! Crash-point sweep smoke: one shared prefix, many forked crash points.
//!
//! Crash points come from a lifecycle-guided plan
//! ([`asap_workloads::enumerate_crash_points`]): a recording pilot notes
//! every WPQ-acceptance / persist / commit / region-end boundary, and the
//! sweep crash-straddles up to `ASAP_CRASH_SWEEP` of them (default 32).
//! The sweep itself runs the snapshot-tree engine — budgeted spine plus
//! per-fork refinement leaves, forks dispatched across `ASAP_SWEEP_JOBS`
//! workers — and is checked two ways:
//!
//! - against a serial flat-cadence sweep of the same points
//!   (bit-identical forks, and ≥5x fewer replayed writes at 32+ points,
//!   via the `snapshot.replayed_writes` metric);
//! - at ≤64 points, additionally against the legacy
//!   one-full-run-per-point path (bit-identical, and ≥5x faster at 32+
//!   points; both passes run with the result cache off, so the ratio
//!   compares simulation work, not memoization).
//!
//! ```sh
//! ASAP_CRASH_SWEEP=1000 ASAP_SWEEP_JOBS=4 cargo run --release --example crash_sweep
//! ```
//!
//! The outcome table goes to stdout and is deterministic — byte-identical
//! at any `ASAP_SWEEP_JOBS`; wall clocks and throughput go to stderr
//! (host-dependent, like every timing note).

use std::time::Instant;

use asap_bench::runcache::RunCacheConfig;
use asap_bench::{emit_wallclock, emit_wallclock_sweep, ops, run_crash_sweep_with, threads};
use asap_core::scheme::SchemeKind;
use asap_sim::obs::metrics;
use asap_workloads::resultjson::results_identical;
use asap_workloads::{
    enumerate_crash_points, run, run_sweep_with, BenchId, RunResult, SweepConfig, WorkloadSpec,
};

fn main() {
    let n_points: u64 = std::env::var("ASAP_CRASH_SWEEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    // The small system config keeps machine state O(touched): a snapshot
    // or restore under table2 geometry copies ~10MB of tag/slab arrays,
    // which at smoke scale would cost as much as re-simulating. Crash
    // sweeps probe recovery behavior, not figure timing, so the small
    // config is the right tool.
    let mut spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_threads(threads())
        .with_ops(ops());
    spec.system = asap_sim::SystemConfig::small();
    // Lifecycle-guided plan: one recording pilot enumerates every
    // persistence boundary; the budget samples them evenly. Point
    // placement is metadata a sweeping tool measures once and reuses, so
    // it stays outside the timed comparison.
    let plan = enumerate_crash_points(&spec, n_points as usize);
    let points = &plan.points;
    // Snapshot cadence trades snapshot cost against fork replay distance;
    // an eighth of the write range keeps both well under one full run.
    let snap_every = (plan.prefix_writes / 8).max(1);

    let replayed0 = metrics::counter_value("snapshot.replayed_writes");
    let t0 = Instant::now();
    let sweep = run_crash_sweep_with(&spec, points, snap_every, &RunCacheConfig::off());
    let sweep_elapsed = t0.elapsed();
    let tree_replayed = metrics::counter_value("snapshot.replayed_writes") - replayed0;

    println!(
        "crash-point sweep: {} x {} ({} lifecycle points of {} candidates, \
         snapshot every {} writes)",
        spec.bench.label(),
        spec.scheme.name(),
        points.len(),
        plan.candidates,
        snap_every
    );
    println!(
        "{:>12} {:>10} {:>12} {:>9} {:>9}",
        "crash_after", "outcome", "uncommitted", "replayed", "tx"
    );
    for p in &sweep.baseline.crash_points {
        println!(
            "{:>12} {:>10} {:>12} {:>9} {:>9}",
            p.crash_after,
            if p.crashed { "crashed" } else { "completed" },
            p.uncommitted,
            p.replayed,
            p.tx
        );
    }

    // Every planned point lies inside the write range, so every fork must
    // fire and recover (the per-scheme invariants already ran inside).
    for (f, p) in sweep.forks.iter().zip(&sweep.baseline.crash_points) {
        assert!(p.crashed, "point {} did not fire", p.crash_after);
        assert!(
            f.recovery.is_some(),
            "point {} has no recovery report",
            p.crash_after
        );
    }

    // Flat-cadence reference: same points, serial, no tree. The forks
    // must match bit-for-bit, and the tree must replay ≥5x fewer writes
    // (the `snapshot.replayed_writes` metric both sweeps feed).
    let flat0 = metrics::counter_value("snapshot.replayed_writes");
    let flat = run_sweep_with(&spec, points, &SweepConfig::flat(snap_every));
    let flat_replayed = metrics::counter_value("snapshot.replayed_writes") - flat0;
    for (f, t) in flat.forks.iter().zip(&sweep.forks) {
        assert!(
            results_identical(t, f),
            "tree fork at {} diverged from the flat-cadence layout",
            f.spec.crash_after.unwrap_or(0)
        );
    }
    println!(
        "replayed writes: tree {} vs flat cadence {}",
        tree_replayed, flat_replayed
    );
    if points.len() >= 32 {
        assert!(
            tree_replayed * 5 <= flat_replayed,
            "the snapshot tree must replay at least 5x fewer writes than \
             the flat cadence (tree {tree_replayed} vs flat {flat_replayed})"
        );
    }

    if points.len() <= 64 {
        // Small sweeps afford the legacy cross-check: one full
        // simulation per point, bit-compared against the forks.
        let t1 = Instant::now();
        let legacy: Vec<RunResult> = points
            .iter()
            .map(|&n| run(&spec.with_crash_after(n)))
            .collect();
        let legacy_elapsed = t1.elapsed();
        for ((f, l), p) in sweep
            .forks
            .iter()
            .zip(&legacy)
            .zip(&sweep.baseline.crash_points)
        {
            assert!(
                results_identical(f, l),
                "fork at {} diverged from the legacy crash_after path",
                p.crash_after
            );
        }
        println!(
            "all {} forks identical to legacy re-runs; all recoveries verified",
            points.len()
        );
        emit_wallclock("crash_sweep_legacy", legacy_elapsed, &[&legacy]);
        let speedup = legacy_elapsed.as_secs_f64() / sweep_elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "crash_sweep: sweep {:.3}s vs legacy {:.3}s ({speedup:.1}x)",
            sweep_elapsed.as_secs_f64(),
            legacy_elapsed.as_secs_f64()
        );
        if points.len() >= 32 {
            assert!(
                speedup >= 5.0,
                "sweep must be at least 5x faster than {} legacy re-runs (got {speedup:.2}x)",
                points.len()
            );
        }
    } else {
        println!(
            "all {} crash points recovered; forks verified against the flat-cadence layout",
            points.len()
        );
    }

    emit_wallclock_sweep(
        "crash_sweep",
        sweep_elapsed,
        &[&sweep.forks],
        points.len() as u64,
    );
    // The ci.sh parallel gate parses this line from two runs (serial and
    // ASAP_SWEEP_JOBS=2) and compares the seconds.
    eprintln!(
        "crash_sweep: {} points in {:.3}s ({:.0} points/s)",
        points.len(),
        sweep_elapsed.as_secs_f64(),
        points.len() as f64 / sweep_elapsed.as_secs_f64().max(1e-9)
    );
}
