//! Demonstrates the two-tier run cache: the same grid is executed three
//! times — cold, warm-from-memory, and (after simulating a new process)
//! warm-from-disk — and the wall clock plus cache counters are printed
//! for each pass. Results are asserted bit-identical across all passes.
//!
//! ```sh
//! cargo run --release --example runcache_demo
//! ```
//!
//! The figure benches get the same behavior from the environment instead:
//! `ASAP_RUNCACHE=disk cargo bench --bench fig7_speedup` twice makes the
//! second invocation a pure cache read (see EXPERIMENTS.md).

use std::time::Instant;

use asap_bench::run_grid_with;
use asap_bench::runcache::{counters, summary_line, RunCacheConfig};
use asap_core::scheme::SchemeKind;
use asap_workloads::resultjson::results_identical;
use asap_workloads::{BenchId, WorkloadSpec};

fn main() {
    let specs: Vec<WorkloadSpec> = BenchId::all()
        .into_iter()
        .flat_map(|b| {
            [SchemeKind::NoPersist, SchemeKind::Asap, SchemeKind::HwUndo]
                .into_iter()
                .map(move |s| WorkloadSpec::new(b, s).with_threads(2).with_ops(60))
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("asap-runcache-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Memory + disk, as `ASAP_RUNCACHE=disk` would configure.
    let cfg = RunCacheConfig {
        mem: true,
        disk: Some(dir.clone()),
        cap: 256,
    };

    println!("--- run cache demo: {} cells ---\n", specs.len());
    let t0 = Instant::now();
    let cold = run_grid_with(&specs, 1, &cfg);
    let cold_s = t0.elapsed().as_secs_f64();
    println!(
        "cold pass   {cold_s:>8.3}s   ({})",
        summary_line(&counters())
    );

    let t0 = Instant::now();
    let warm_mem = run_grid_with(&specs, 1, &cfg);
    let mem_s = t0.elapsed().as_secs_f64();
    println!(
        "mem pass    {mem_s:>8.3}s   ({})",
        summary_line(&counters())
    );

    // A fresh process would start with an empty memory tier and hit the
    // disk store; a disk-only config simulates that here.
    let t0 = Instant::now();
    let warm_disk = run_grid_with(&specs, 1, &RunCacheConfig::disk_only(&dir, 256));
    let disk_s = t0.elapsed().as_secs_f64();
    println!(
        "disk pass   {disk_s:>8.3}s   ({})",
        summary_line(&counters())
    );

    for warm in [&warm_mem, &warm_disk] {
        assert!(
            cold.iter()
                .zip(warm.iter())
                .all(|(a, b)| results_identical(a, b)),
            "cached results must be bit-identical to fresh ones"
        );
    }
    println!(
        "\nall {} results bit-identical; mem {:.0}x, disk {:.0}x faster than cold",
        specs.len(),
        cold_s / mem_s.max(1e-9),
        cold_s / disk_s.max(1e-9),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
