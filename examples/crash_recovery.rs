//! A guided tour of ASAP's crash-recovery machinery (§5.5).
//!
//! Builds a dependence chain across two threads, crashes at a chosen
//! moment, and walks through what recovery found: which regions were
//! uncommitted, the order they were undone in, and the resulting state.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;

fn main() {
    println!("--- ASAP crash & recovery walkthrough ---\n");
    let mut m = Machine::new(MachineConfig::small(SchemeKind::Asap, 2).with_tracking());
    let shared = m.pm_alloc(8).unwrap();
    let log_a = m.pm_alloc(8 * 4).unwrap();
    let log_b = m.pm_alloc(8 * 4).unwrap();

    // Interleave producer/consumer regions across two threads: each region
    // reads the shared cell, increments it, and journals what it saw. The
    // hardware records a data dependence for every hand-off.
    for round in 0..4u64 {
        m.run_thread(0, |ctx| {
            ctx.locked_region(0, |ctx| {
                let v = ctx.read_u64(shared);
                ctx.write_u64(shared, v + 1);
                ctx.write_u64(log_a.offset(round * 8), v + 1);
            });
        });
        m.run_thread(1, |ctx| {
            ctx.locked_region(0, |ctx| {
                let v = ctx.read_u64(shared);
                ctx.write_u64(shared, v + 1);
                ctx.write_u64(log_b.offset(round * 8), v + 1);
            });
        });
    }
    println!("executed 8 chained regions (4 per thread), all asynchronous");
    println!("uncommitted work is still draining toward the WPQ...\n");

    // Power failure right now: caches are lost; the WPQs, LH-WPQ and
    // Dependence List flush (ADR); recovery walks the dependence DAG and
    // undoes uncommitted regions newest-first.
    m.crash_now();
    let report = m.recover();
    println!("power failure!");
    println!(
        "  uncommitted regions rolled back : {:?}",
        report.uncommitted
    );
    println!(
        "  log entries restored            : {}",
        report.restored_lines
    );

    let survived = m.debug_read_u64(shared);
    println!("\nshared counter after recovery: {survived} (of 8 increments)");
    // The survivors must be exactly the first `survived` increments,
    // alternating thread 0 / thread 1 — a dependence-closed prefix.
    let mut expected = Vec::new();
    for i in 0..survived {
        let journal = if i % 2 == 0 { log_a } else { log_b };
        let v = m.debug_read_u64(journal.offset(i / 2 * 8));
        expected.push(v);
        assert_eq!(v, i + 1, "journal entry {i}");
    }
    println!("surviving journal entries: {expected:?}");
    println!("every surviving region's dependencies also survived — Fig. 2's");
    println!("unrecoverable interleavings cannot happen under ASAP.");
}
