//! Miniature of Figure 10: throughput as persistent memory slows down.
//!
//! Sweeps the PM latency multiplier from 1× (battery-backed DRAM) to 16×
//! and prints throughput normalized to no-persistence at each point —
//! showing ASAP's robustness against slow persistent memory technologies.
//!
//! ```sh
//! cargo run --release --example latency_sweep
//! ```

use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId, WorkloadSpec};

fn main() {
    println!("--- throughput vs PM latency (Q benchmark, normalized to NP) ---\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "PM lat", "NP", "ASAP", "HWUndo", "HWRedo"
    );
    for mult in [1u64, 2, 4, 8, 16] {
        let spec = |s: SchemeKind| {
            let mut sp = WorkloadSpec::new(BenchId::Q, s)
                .with_threads(4)
                .with_ops(200);
            sp.system = sp.system.with_pm_latency_mult(mult);
            sp
        };
        let np = run(&spec(SchemeKind::NoPersist));
        let asap = run(&spec(SchemeKind::Asap)).speedup_over(&np);
        let undo = run(&spec(SchemeKind::HwUndo)).speedup_over(&np);
        let redo = run(&spec(SchemeKind::HwRedo)).speedup_over(&np);
        println!(
            "{:>5}x {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            mult, 1.0, asap, undo, redo
        );
    }
    println!("\nASAP performs no persist operations on the critical path, so its");
    println!("throughput is insensitive to the persist latency — it suits both");
    println!("fast and slow persistent memory technologies (§7.3).");
}
