//! Miniature of Figure 10: throughput as persistent memory slows down.
//!
//! Sweeps the PM latency multiplier from 1× (battery-backed DRAM) to 16×
//! and prints throughput normalized to no-persistence at each point —
//! showing ASAP's robustness against slow persistent memory technologies.
//!
//! ```sh
//! cargo run --release --example latency_sweep
//! ```

use asap_bench::run_grid;
use asap_core::scheme::SchemeKind;
use asap_workloads::{BenchId, WorkloadSpec};

const MULTS: [u64; 5] = [1, 2, 4, 8, 16];
const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::NoPersist,
    SchemeKind::Asap,
    SchemeKind::HwUndo,
    SchemeKind::HwRedo,
];

fn main() {
    println!("--- throughput vs PM latency (Q benchmark, normalized to NP) ---\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "PM lat", "NP", "ASAP", "HWUndo", "HWRedo"
    );
    let specs: Vec<_> = MULTS
        .iter()
        .flat_map(|mult| {
            SCHEMES.iter().map(move |s| {
                let mut sp = WorkloadSpec::new(BenchId::Q, *s)
                    .with_threads(4)
                    .with_ops(200);
                sp.system = sp.system.with_pm_latency_mult(*mult);
                sp
            })
        })
        .collect();
    let results = run_grid(&specs);
    for (mi, cell) in results.chunks(SCHEMES.len()).enumerate() {
        let np = &cell[0];
        println!(
            "{:>5}x {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            MULTS[mi],
            1.0,
            cell[1].speedup_over(np),
            cell[2].speedup_over(np),
            cell[3].speedup_over(np),
        );
    }
    println!("\nASAP performs no persist operations on the critical path, so its");
    println!("throughput is insensitive to the persist latency — it suits both");
    println!("fast and slow persistent memory technologies (§7.3).");
}
