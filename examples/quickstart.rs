//! Quickstart: atomic durability in five minutes.
//!
//! Builds an ASAP machine, runs a few atomic regions, simulates a power
//! failure, recovers, and shows what survived.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asap_core::machine::{Machine, MachineConfig};
use asap_core::scheme::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down machine running the ASAP persistence scheme, with the
    // crash-consistency shadow enabled so recovery is verified.
    let mut machine = Machine::new(MachineConfig::small(SchemeKind::Asap, 1).with_tracking());

    // `asap_malloc`: persistent, cache-line aligned.
    let counter = machine.pm_alloc(8)?;
    let journal = machine.pm_alloc(8 * 10)?;

    // Ten atomic regions: bump the counter and journal the old value.
    machine.run_thread(0, |ctx| {
        for i in 0..10u64 {
            ctx.begin_region(); // asap_begin
            let v = ctx.read_u64(counter);
            ctx.write_u64(counter, v + 1);
            ctx.write_u64(journal.offset(i * 8), v);
            ctx.end_region(); // asap_end — returns immediately!
        }
    });
    println!("executed 10 regions in {} cycles", machine.makespan());

    // The regions commit in the background; power fails before draining.
    machine.crash_now();
    let report = machine.recover();
    println!(
        "crash: {} regions were uncommitted and were rolled back",
        report.uncommitted.len()
    );

    // Atomic durability: the surviving state is a consistent prefix.
    let survived = machine.debug_read_u64(counter);
    println!("counter after recovery: {survived}");
    for i in 0..survived {
        assert_eq!(machine.debug_read_u64(journal.offset(i * 8)), i);
    }
    println!("journal consistent with the counter — no torn regions");

    // Run again, but fence before 'I/O' (§5.2): everything becomes durable.
    machine.run_thread(0, |ctx| {
        ctx.begin_region();
        let v = ctx.read_u64(counter);
        ctx.write_u64(counter, v + 100);
        ctx.end_region();
        ctx.fence(); // asap_fence — synchronous persistence point
    });
    machine.crash_now();
    machine.recover();
    println!(
        "after a fenced region + crash: counter = {}",
        machine.debug_read_u64(counter)
    );
    assert_eq!(machine.debug_read_u64(counter), survived + 100);
    Ok(())
}
