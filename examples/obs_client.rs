//! Minimal HTTP GET client for the `ASAP_HTTP` observability server —
//! a std-only stand-in for `curl` so `ci.sh` needs no external tools.
//!
//! ```text
//! cargo run --release --example obs_client -- 127.0.0.1:4280 /metrics
//! cargo run --release --example obs_client -- 127.0.0.1:4280 /events 2048
//! ```
//!
//! Sends one `GET <path> HTTP/1.1`, prints the response body to stdout,
//! and exits 0 iff the status is 200. The optional third argument caps
//! how many body bytes to read before hanging up — that's how ci tails
//! the head of the endless `/events` stream without blocking forever.
//! Chunked transfer encoding is passed through verbatim (the chunk-size
//! lines are part of what the smoke asserts against anyway).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_client: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(addr), Some(path)) = (args.next(), args.next()) else {
        return fail("usage: obs_client <addr> <path> [max_body_bytes]");
    };
    let cap: usize = args
        .next()
        .map_or(usize::MAX, |v| v.parse().unwrap_or(usize::MAX));

    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if let Err(e) = stream.write_all(req.as_bytes()) {
        return fail(&format!("write: {e}"));
    }

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut body_start = None;
    loop {
        if let Some(start) = body_start {
            if buf.len().saturating_sub(start) >= cap {
                break; // enough of the body; hang up on the stream
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if body_start.is_none() {
                    body_start = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
                }
            }
            Err(e) => {
                // A timeout after data arrived is how a capped /events
                // read ends when records stop flowing; only a timeout
                // with nothing read at all is a failure.
                if buf.is_empty() {
                    return fail(&format!("read: {e}"));
                }
                break;
            }
        }
    }

    let Some(start) = body_start else {
        return fail(&format!(
            "no header terminator in response from {addr}{path}"
        ));
    };
    let head = String::from_utf8_lossy(&buf[..start]);
    let status_line = head.lines().next().unwrap_or_default();
    let ok = status_line.starts_with("HTTP/1.1 200") || status_line.starts_with("HTTP/1.0 200");
    let body = &buf[start..buf.len().min(start + cap.min(buf.len() - start))];
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(body);
    let _ = out.flush();
    if ok {
        ExitCode::SUCCESS
    } else {
        fail(&format!("{addr}{path}: {status_line}"))
    }
}
