//! Observability demo: runs one benchmark with event tracing and writes a
//! Chrome trace (open it at `ui.perfetto.dev`) plus a JSON stats report
//! with per-region cycle breakdowns and latency histograms.
//!
//! ```sh
//! ASAP_TRACE=1 cargo run --release --example trace_report
//! ```
//!
//! Environment knobs:
//!
//! - `ASAP_TRACE` — enable tracing (anything but empty/`0`)
//! - `ASAP_TRACE_CAP` — ring-buffer capacity in records (default 2^20;
//!   the newest records win when the ring overflows)

use std::fs;

use asap_core::scheme::SchemeKind;
use asap_sim::TraceSettings;
use asap_workloads::{run, BenchId, WorkloadSpec};

fn main() {
    let settings = TraceSettings::from_env();
    if !settings.enabled {
        println!("note: tracing is OFF; set ASAP_TRACE=1 to capture events\n");
    }
    let spec = WorkloadSpec::new(BenchId::Hm, SchemeKind::Asap)
        .with_ops(100)
        .with_trace(settings);
    let r = run(&spec);

    println!("--- HM / ASAP on the Table 2 system ({} tx) ---\n", r.tx);
    println!("mean cycles per region: {:.1}", r.region_cycles_mean);
    println!("  compute          {:>10.1}", r.stalls.compute);
    println!("  log-full         {:>10.1}", r.stalls.log_full);
    println!("  WPQ backpressure {:>10.1}", r.stalls.wpq_backpressure);
    println!("  dependency wait  {:>10.1}", r.stalls.dependency_wait);
    println!("  commit wait      {:>10.1}", r.stalls.commit_wait);

    println!("\nlatency histograms (cycles):");
    for name in [
        "region.cycles",
        "mem.persist.latency",
        "mem.wpq.residency_cycles",
    ] {
        if let Some(h) = r.stats.histogram(name) {
            println!(
                "  {name:<26} p50 {:>7} p95 {:>7} p99 {:>7} max {:>7}",
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        }
    }

    fs::write("trace_report.stats.json", r.stats.to_json()).expect("write stats json");
    println!("\nwrote trace_report.stats.json");
    if let Some(chrome) = &r.chrome_trace {
        fs::write("trace_report.chrome.json", chrome).expect("write chrome trace");
        println!("wrote trace_report.chrome.json — open it at ui.perfetto.dev");
        println!("(1 simulated cycle renders as 1 \u{00b5}s; pid 0 = cpu, pid 1 = pm)");
    }
}
