//! Bank ledger: classic atomic-transfer crash consistency.
//!
//! Multiple tellers move money between accounts; each transfer is one
//! atomic region (debit + credit + audit row). Power fails mid-run at a
//! random point; after recovery the books must still balance — under any
//! of the logging schemes.
//!
//! ```sh
//! cargo run --release --example bank_ledger
//! ```

use asap_core::machine::{Machine, MachineConfig, RunOutcome, StepFn, ThreadCtx};
use asap_core::scheme::SchemeKind;
use asap_pmem::PmAddr;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;
const TELLERS: u32 = 4;
const TRANSFERS_PER_TELLER: u64 = 150;

#[derive(Clone, Copy)]
struct Bank {
    accounts: PmAddr, // 64 balances, one line each to avoid false sharing
    audit: PmAddr,    // running count of transfers
}

impl Bank {
    fn account(&self, i: u64) -> PmAddr {
        self.accounts.offset(i * 64)
    }

    fn transfer(&self, ctx: &mut ThreadCtx, from: u64, to: u64, amount: u64) {
        // Lock ordering by account index (isolation is software's job).
        let (la, lb) = (from.min(to) as usize, from.max(to) as usize);
        ctx.lock(la);
        if lb != la {
            ctx.lock(lb);
        }
        ctx.begin_region();
        let a = ctx.read_u64(self.account(from));
        let b = ctx.read_u64(self.account(to));
        let amount = amount.min(a); // no overdrafts
        ctx.write_u64(self.account(from), a - amount);
        ctx.write_u64(self.account(to), b + amount);
        let n = ctx.read_u64(self.audit);
        ctx.write_u64(self.audit, n + 1);
        if lb != la {
            ctx.unlock(lb);
        }
        ctx.unlock(la);
        ctx.end_region();
    }
}

fn total(machine: &mut Machine, bank: &Bank) -> u64 {
    (0..ACCOUNTS)
        .map(|i| machine.debug_read_u64(bank.account(i)))
        .sum()
}

fn run_scheme(scheme: SchemeKind, crash_after: u64) {
    let mut machine = Machine::new(MachineConfig::small(scheme, TELLERS).with_tracking());
    let bank = Bank {
        accounts: machine.pm_alloc(ACCOUNTS * 64).expect("heap"),
        audit: machine.pm_alloc(8).expect("heap"),
    };
    // Fund the accounts in atomic regions, then make the setup durable.
    machine.run_thread(0, |ctx| {
        for chunk in 0..(ACCOUNTS / 8) {
            ctx.begin_region();
            for i in 0..8 {
                ctx.write_u64(bank.account(chunk * 8 + i), INITIAL);
            }
            ctx.end_region();
        }
        ctx.fence();
    });
    machine.sync_thread_clocks();
    machine.arm_crash_after_additional(crash_after);

    let mut steps: Vec<StepFn> = (0..TELLERS as usize)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(0xBA2D ^ t as u64);
            let mut left = TRANSFERS_PER_TELLER;
            Box::new(move |ctx: &mut ThreadCtx| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                let from = rng.random_range(0..ACCOUNTS);
                // Distinct destination (a self-transfer would double-count).
                let to = (from + rng.random_range(1..ACCOUNTS)) % ACCOUNTS;
                let amount = rng.random_range(1..200u64);
                bank.transfer(ctx, from, to, amount);
                ctx.complete_tx();
                left > 0
            }) as StepFn
        })
        .collect();
    let outcome = machine.run(&mut steps);
    drop(steps);

    let (rolled_back, when) = match outcome {
        RunOutcome::Crashed => {
            let report = machine.recover();
            (report.uncommitted.len(), "mid-run power failure")
        }
        RunOutcome::Completed => {
            machine.drain();
            (0, "clean completion")
        }
    };
    let sum = total(&mut machine, &bank);
    let audits = machine.debug_read_u64(bank.audit);
    println!(
        "{:8}  {:22}  rolled_back={rolled_back:3}  audited_transfers={audits:4}  total=${sum}",
        scheme.name(),
        when,
    );
    assert_eq!(sum, ACCOUNTS * INITIAL, "{scheme}: the books must balance");
}

fn main() {
    println!(
        "--- bank ledger: {} accounts x ${INITIAL}, {TELLERS} tellers ---",
        ACCOUNTS
    );
    for scheme in [
        SchemeKind::Asap,
        SchemeKind::HwUndo,
        SchemeKind::HwRedo,
        SchemeKind::SwUndo,
    ] {
        for crash_after in [40, 400, 100_000] {
            run_scheme(scheme, crash_after);
        }
    }
    println!("books balanced under every scheme and crash point.");
}
