//! Multi-threaded persistent key-value store across all schemes.
//!
//! Runs the HM (hash map) workload of Table 3 — the store itself lives in
//! simulated persistent memory — under every persistence scheme and
//! prints a small performance/traffic comparison, a miniature of the
//! paper's Figure 7 / Figure 9b.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use asap_core::scheme::SchemeKind;
use asap_workloads::{run, BenchId, WorkloadSpec};

fn main() {
    println!("--- persistent KV store (HM), 4 threads, 64B values ---\n");
    println!(
        "{:10} {:>12} {:>14} {:>12} {:>16}",
        "scheme", "tx/kcycle", "vs SW", "PM writes", "cycles/region"
    );
    let sw = run(&WorkloadSpec::new(BenchId::Hm, SchemeKind::SwUndo)
        .with_threads(4)
        .with_ops(300));
    for scheme in [
        SchemeKind::SwUndo,
        SchemeKind::HwRedo,
        SchemeKind::HwUndo,
        SchemeKind::Asap,
        SchemeKind::NoPersist,
    ] {
        let r = run(&WorkloadSpec::new(BenchId::Hm, scheme)
            .with_threads(4)
            .with_ops(300));
        println!(
            "{:10} {:>12.3} {:>13.2}x {:>12} {:>16.0}",
            scheme.name(),
            r.throughput,
            r.speedup_over(&sw),
            r.pm_writes,
            r.region_cycles_mean,
        );
    }
    println!(
        "\nASAP commits regions asynchronously: its regions cost barely more\n\
         than no-persistence, and the §5.1 optimizations drop most log\n\
         traffic before it ever reaches the persistent media."
    );
}
