//! Validates an NDJSON run-event stream (`asap-events-v1`).
//!
//! ```text
//! ASAP_EVENTS=/tmp/ev.ndjson cargo bench --bench fig7_speedup
//! cargo run --release --example events_check -- /tmp/ev.ndjson
//! ```
//!
//! Checks, exiting nonzero on the first failure:
//!
//! - the file is non-empty and every line parses with [`asap_sim::json`];
//! - the first record is the `run_meta` stream header and carries the
//!   `asap-events-v1` schema tag, a `build` fingerprint string, a `jobs`
//!   count, and a `knobs` object of the active `ASAP_*` environment;
//! - every record carries `ev`, `seq` and `t_us`;
//! - `cell_start`/`cell_end` counts balance per fingerprint;
//! - at least one `grid_start`, and as many `grid_end` as `grid_start`.
//!
//! `ci.sh` runs this against the stream of a figure smoke run.

use std::collections::HashMap;
use std::process::ExitCode;

use asap_sim::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("events_check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        return fail("usage: events_check <events.ndjson>");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    if text.lines().next().is_none() {
        return fail(&format!("{path} is empty"));
    }

    let mut kinds: HashMap<String, usize> = HashMap::new();
    let mut starts: HashMap<String, i64> = HashMap::new();
    for (n, line) in text.lines().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(&format!("{path}:{}: unparseable record: {e}", n + 1)),
        };
        let Some(ev) = v.get("ev").and_then(Value::as_str) else {
            return fail(&format!("{path}:{}: record without ev", n + 1));
        };
        if n == 0 {
            if ev != "run_meta" {
                return fail(&format!(
                    "{path}:1: first record is {ev}, expected the run_meta header"
                ));
            }
            if v.get("schema").and_then(Value::as_str) != Some("asap-events-v1") {
                return fail(&format!("{path}:1: run_meta without asap-events-v1 schema"));
            }
            if v.get("build").and_then(Value::as_str).is_none() {
                return fail(&format!("{path}:1: run_meta without build fingerprint"));
            }
            if v.get("jobs").and_then(Value::as_u64).is_none() {
                return fail(&format!("{path}:1: run_meta without jobs"));
            }
            if !matches!(v.get("knobs"), Some(Value::Obj(_))) {
                return fail(&format!("{path}:1: run_meta without knobs object"));
            }
        } else if ev == "run_meta" {
            return fail(&format!(
                "{path}:{}: run_meta must only head the stream",
                n + 1
            ));
        }
        for key in ["seq", "t_us"] {
            if v.get(key).and_then(Value::as_u64).is_none() {
                return fail(&format!("{path}:{}: {ev} record without {key}", n + 1));
            }
        }
        if ev == "cell_start" || ev == "cell_end" {
            let Some(fp) = v.get("fp").and_then(Value::as_str) else {
                return fail(&format!("{path}:{}: {ev} record without fp", n + 1));
            };
            *starts.entry(fp.to_string()).or_default() += if ev == "cell_start" { 1 } else { -1 };
        }
        *kinds.entry(ev.to_string()).or_default() += 1;
    }

    if kinds.get("grid_start").copied().unwrap_or(0) == 0 {
        return fail(&format!("{path}: no grid_start record"));
    }
    if kinds.get("grid_start") != kinds.get("grid_end") {
        return fail(&format!(
            "{path}: {} grid_start vs {} grid_end",
            kinds.get("grid_start").copied().unwrap_or(0),
            kinds.get("grid_end").copied().unwrap_or(0)
        ));
    }
    if let Some((fp, n)) = starts.iter().find(|(_, &n)| n != 0) {
        return fail(&format!("{path}: cell {fp} unbalanced by {n}"));
    }

    let cells = kinds.get("cell_end").copied().unwrap_or(0);
    let mut by_kind: Vec<(&String, &usize)> = kinds.iter().collect();
    by_kind.sort();
    let summary: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "events_check: {} ok — {} records, {cells} cells ({})",
        path,
        text.lines().count(),
        summary.join(", ")
    );
    ExitCode::SUCCESS
}
